"""Parallel execution of value-query batches across a worker pool.

:class:`ParallelQueryEngine` runs the batch engine's merged query groups
(:func:`~repro.core.batch.merge_queries`) on ``workers`` threads instead
of one loop.  The point is *latency hiding*, not CPU parallelism: on the
simulated device a cold query spends almost all of its wall time waiting
for page reads (8.5 ms per random read, see
:data:`~repro.storage.stats.RANDOM_READ_MS`), and those waits overlap
perfectly across threads.  The optional :class:`DeviceModel` turns the
accounted I/O of each group fetch into a real ``time.sleep`` *outside*
the serialized section, which is exactly the regime a thread pool
over blocking disk reads exploits — the throughput benchmark
(``python -m repro.bench throughput``) measures the effect.

Determinism is non-negotiable: the engine must return byte-identical
answers and identical I/O accounting to the serial
:class:`~repro.core.batch.BatchQueryEngine`.  Three mechanisms deliver
that:

* **Ticketed fetches.**  All page reads happen inside group fetches, and
  :class:`_FetchTickets` serializes the fetches in global group order —
  group ``g`` cannot start reading before group ``g-1`` finished.  The
  shared buffer pools and the shared :class:`~repro.storage.stats.IOStats`
  therefore evolve in exactly the serial order, so page counts,
  sequential/random classification and cache hits are reproduced bit for
  bit.  Only the device waits and the pure-CPU estimation step run
  concurrently.
* **Static group ownership.**  Worker ``w`` owns groups ``g ≡ w (mod
  workers)``, so per-worker I/O totals are a pure function of the
  workload, not of scheduling.
* **Shared-state discipline.**  The index's ``_fault_mode`` /
  ``_query_faults`` / ``tracer`` attributes are only touched while a
  ticket is held; estimation works on candidate-array copies owned by
  the worker; :meth:`~repro.core.base.ValueIndex._finish` is pure CPU.

With a tracer installed, each worker records its own span tree
(``worker[w] → group[g] → filter/fetch/estimate``) and the trees are
grafted under one ``parallel`` span on the caller's tracer, so EXPLAIN
ANALYZE shows per-worker timing.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER, Tracer
from ..storage import IOStats, PoolCounters
from ..storage.stats import RANDOM_READ_MS, SEQUENTIAL_READ_MS
from .base import EstimateMode, FaultMode, ValueIndex
from .batch import (BatchResult, DEFAULT_BATCH_CACHE_PAGES, QueryGroup,
                    merge_queries)
from .query import QueryResult, ValueQuery

_PARALLEL_BATCHES = REGISTRY.counter(
    "repro_parallel_batches_total",
    "Query batches executed by the parallel engine, per access method.")
_PARALLEL_WORKERS = REGISTRY.histogram(
    "repro_parallel_workers",
    "Worker count of each parallel batch, per access method.")


@dataclass(frozen=True)
class DeviceModel:
    """Turns accounted page reads into real wall-time waits.

    The millisecond costs default to the benchmark harness's disk model
    (:data:`~repro.storage.stats.RANDOM_READ_MS` /
    :data:`~repro.storage.stats.SEQUENTIAL_READ_MS`); ``scale`` shrinks
    or stretches the waits uniformly (useful for fast smoke runs).
    Skipped pages were still transferred before their checksum failed,
    so they cost a sequential read — the same convention the harness
    uses.
    """

    random_read_ms: float = RANDOM_READ_MS
    sequential_read_ms: float = SEQUENTIAL_READ_MS
    scale: float = 1.0

    def delay_s(self, io: IOStats) -> float:
        """Simulated device time of ``io``, in seconds."""
        ms = (io.random_reads * self.random_read_ms
              + (io.sequential_reads + io.skipped_pages)
              * self.sequential_read_ms)
        return ms * self.scale / 1000.0


class _Aborted(Exception):
    """Internal: a sibling worker failed; unwind quietly."""


class _FetchTickets:
    """Serializes group fetches in global group order.

    ``acquire(g)`` blocks until every fetch with a smaller ticket has
    released; ``release(g)`` admits ticket ``g + 1``.  A fetch that
    fails calls :meth:`abort` instead of releasing, which wakes every
    waiter with :class:`_Aborted` — since fetches run strictly in ticket
    order, the first recorded error is the error the serial engine
    would have raised.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0
        self.error: BaseException | None = None

    def acquire(self, ticket: int) -> None:
        with self._cond:
            while self._next != ticket and self.error is None:
                self._cond.wait()
            if self.error is not None:
                raise _Aborted()

    def release(self, ticket: int) -> None:
        with self._cond:
            self._next = ticket + 1
            self._cond.notify_all()

    def abort(self, exc: BaseException) -> None:
        with self._cond:
            if self.error is None:
                self.error = exc
            self._cond.notify_all()


@dataclass
class ParallelResult(BatchResult):
    """A :class:`~repro.core.batch.BatchResult` plus per-worker detail."""

    #: Number of worker threads the batch actually used.
    workers: int = 0
    #: Fetch I/O performed by each worker (index = worker id).  The sum
    #: over workers equals :attr:`io` exactly.
    worker_io: list[IOStats] = dc_field(default_factory=list)
    #: Wall time each worker thread was alive, in seconds.
    worker_wall_s: list[float] = dc_field(default_factory=list)


class ParallelQueryEngine:
    """Executes query batches across a thread pool.

    Parameters
    ----------
    index:
        Any built :class:`~repro.core.base.ValueIndex`.
    workers:
        Worker thread count (>= 1).  The engine never spawns more
        threads than there are groups.
    cache_pages:
        Shared buffer-pool capacity lent to the index for the batch,
        exactly as in :class:`~repro.core.batch.BatchQueryEngine`.
    merge:
        Whether to merge overlapping query intervals before dispatch.
    device:
        Optional :class:`DeviceModel`.  When given, every group fetch is
        followed by a real sleep for its simulated device time, *after*
        the serialized section — the waits overlap across workers.
        ``None`` (default) skips the sleeps, so correctness tests run at
        full speed.
    """

    def __init__(self, index: ValueIndex, workers: int = 4,
                 cache_pages: int = DEFAULT_BATCH_CACHE_PAGES,
                 merge: bool = True,
                 device: DeviceModel | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if cache_pages < 0:
            raise ValueError(
                f"cache_pages must be >= 0, got {cache_pages}")
        self.index = index
        self.workers = workers
        self.cache_pages = cache_pages
        self.merge = merge
        self.device = device

    def run(self, queries: Sequence[ValueQuery],
            estimate: EstimateMode = "area",
            on_fault: FaultMode = "raise") -> ParallelResult:
        """Execute a batch across the worker pool.

        Results, per-query I/O attribution and fault semantics are
        identical to :meth:`~repro.core.batch.BatchQueryEngine.run`; the
        extra :class:`ParallelResult` fields report how the work was
        spread over workers.
        """
        if on_fault not in ("raise", "skip"):
            raise ValueError(
                f"on_fault must be 'raise' or 'skip', got {on_fault!r}")
        queries = list(queries)
        if not queries:
            return ParallelResult()
        index = self.index
        tracer = index.tracer
        tree = getattr(index, "tree", None)
        if tree is not None and tree._dirty:
            # Flush once up front so no worker triggers the lazy flush
            # inside a search.
            tree.flush()
        with tracer.span("parallel") as pspan:
            with tracer.span("merge"):
                groups = merge_queries(queries, merge=self.merge)
            n_workers = min(self.workers, len(groups))
            if pspan.enabled:
                pspan.attrs.update(
                    method=index.name, queries=len(queries),
                    groups=len(groups), workers=n_workers,
                    merge=self.merge)
            pools = self._pools()
            saved_caps = [p.capacity for p in pools]
            before_pool = [p.counters() for p in pools]
            before_batch = index.stats.snapshot()
            for pool in pools:
                pool.resize(max(pool.capacity, self.cache_pages))
            results: list[QueryResult | None] = [None] * len(queries)
            tickets = _FetchTickets()
            worker_io = [IOStats() for _ in range(n_workers)]
            worker_wall = [0.0] * n_workers
            worker_tracers = [Tracer() if tracer.enabled else None
                              for _ in range(n_workers)]
            # Workers install their own tracer while holding a ticket;
            # park the index on the null tracer meanwhile.
            index.tracer = NULL_TRACER

            def runner(w: int) -> None:
                t0 = time.perf_counter()
                try:
                    self._worker_loop(w, n_workers, groups, queries,
                                      results, estimate, on_fault,
                                      tickets, worker_tracers[w],
                                      worker_io)
                except _Aborted:
                    pass
                except BaseException as exc:
                    tickets.abort(exc)
                finally:
                    worker_wall[w] = time.perf_counter() - t0

            try:
                threads = [threading.Thread(target=runner, args=(w,),
                                            name=f"repro-worker-{w}")
                           for w in range(n_workers)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                pool_traffic = sum(
                    (p.counters().diff(b)
                     for p, b in zip(pools, before_pool)),
                    PoolCounters())
            finally:
                index.tracer = tracer
                for pool, cap in zip(pools, saved_caps):
                    pool.resize(cap)
            if tickets.error is not None:
                raise tickets.error
            if tracer.enabled:
                for w, wt in enumerate(worker_tracers):
                    for root in wt.roots:
                        root.io = worker_io[w]
                        pspan.children.append(root)
        if REGISTRY.enabled:
            _PARALLEL_BATCHES.inc(1, method=index.name)
            _PARALLEL_WORKERS.observe(n_workers, method=index.name)
        return ParallelResult(results=results,
                              io=index.stats.diff(before_batch),
                              pool=pool_traffic, groups=len(groups),
                              workers=n_workers, worker_io=worker_io,
                              worker_wall_s=worker_wall)

    # -- internals ----------------------------------------------------------

    def _worker_loop(self, w: int, n_workers: int,
                     groups: list[QueryGroup], queries: list[ValueQuery],
                     results: list[QueryResult | None],
                     estimate: EstimateMode, on_fault: FaultMode,
                     tickets: _FetchTickets, wt: Tracer | None,
                     worker_io: list[IOStats]) -> None:
        """Drain the groups worker ``w`` statically owns, in order."""
        if wt is not None:
            # The OS thread id rides along as ``tid`` so the Chrome
            # trace exporter puts each worker on its own Perfetto lane.
            with wt.span(f"worker[{w}]",
                         {"worker": w,
                          "tid": threading.get_native_id()}):
                self._drain(w, n_workers, groups, queries, results,
                            estimate, on_fault, tickets, wt, worker_io)
        else:
            self._drain(w, n_workers, groups, queries, results,
                        estimate, on_fault, tickets, wt, worker_io)

    def _drain(self, w: int, n_workers: int, groups: list[QueryGroup],
               queries: list[ValueQuery],
               results: list[QueryResult | None],
               estimate: EstimateMode, on_fault: FaultMode,
               tickets: _FetchTickets, wt: Tracer | None,
               worker_io: list[IOStats]) -> None:
        for gi in range(w, len(groups), n_workers):
            group = groups[gi]
            if wt is not None:
                with wt.span(f"group[{gi}]",
                             {"lo": group.lo, "hi": group.hi,
                              "size": group.size}) as gspan:
                    fetch_io = self._run_group(gi, group, queries,
                                               results, estimate,
                                               on_fault, tickets, wt)
                    gspan.io = fetch_io
            else:
                fetch_io = self._run_group(gi, group, queries, results,
                                           estimate, on_fault, tickets,
                                           wt)
            worker_io[w] += fetch_io

    def _run_group(self, gi: int, group: QueryGroup,
                   queries: list[ValueQuery],
                   results: list[QueryResult | None],
                   estimate: EstimateMode, on_fault: FaultMode,
                   tickets: _FetchTickets,
                   wt: Tracer | None) -> IOStats:
        """Fetch one group under its ticket, then estimate concurrently.

        Returns the group's fetch I/O (also attributed to the group's
        first member, mirroring the serial engine).
        """
        index = self.index
        tickets.acquire(gi)
        # A failure inside the serialized section must never admit the
        # next ticket: the exception propagates to the worker runner,
        # which aborts every waiter (keeping the first, lowest-ticket
        # error — the one the serial engine would have raised).
        before = index.stats.snapshot()
        index._fault_mode = on_fault
        index._query_faults = []
        if wt is not None:
            index.tracer = wt
        try:
            candidates = index._candidates(group.lo, group.hi)
            group_faults = index._query_faults
        finally:
            index.tracer = NULL_TRACER
            index._fault_mode = "raise"
            index._query_faults = []
        fetch_io = index.stats.diff(before)
        tickets.release(gi)
        # Everything below runs concurrently across workers: the
        # simulated device wait and the pure-CPU estimation step.
        if self.device is not None:
            delay = self.device.delay_s(fetch_io)
            if delay > 0.0:
                time.sleep(delay)
        vmin = candidates["vmin"].astype(np.float64)
        vmax = candidates["vmax"].astype(np.float64)
        for ordinal, i in enumerate(group.members):
            q = queries[i]
            mine = candidates[(vmin <= q.hi) & (vmax >= q.lo)]
            if wt is not None:
                with wt.span("estimate", {"mode": estimate, "query": i}):
                    result = index._finish(q, mine, estimate)
            else:
                result = index._finish(q, mine, estimate)
            result.io = fetch_io if ordinal == 0 else IOStats()
            if ordinal == 0:
                result.faults = group_faults
            results[i] = result
        return fetch_io

    def _pools(self):
        """Every buffer pool the index reads through."""
        pools = [self.index.store.pool]
        tree = getattr(self.index, "tree", None)
        if tree is not None:
            pools.append(tree.pool)
        return pools

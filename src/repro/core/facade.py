"""Engine facade: the one API every front end drives the engine through.

The CLI, the bench harness, and the serve layer all need the same five
verbs — open a field, query it, run a batch, apply updates, snapshot it
— and before this module each of them re-plumbed index construction,
engine selection and buffer-pool bookkeeping on its own.
:class:`EngineFacade` centralizes that: it keeps a registry of named
fields (each a built :class:`~repro.core.base.ValueIndex`), serializes
engine access per field (the engines mutate index state and are not
reentrant), brackets every call with buffer-pool tenant attribution, and
picks the serial :class:`~repro.core.batch.BatchQueryEngine` or the
:class:`~repro.core.parallel.ParallelQueryEngine` per the handle's
worker budget.  Later sharding/serving PRs grow behind this API instead
of re-plumbing CLI internals.

A field can be opened from four kinds of source:

* a built :class:`~repro.core.base.ValueIndex` (used directly);
* an in-memory :class:`~repro.field.base.Field` (indexed on open);
* a saved index directory (``meta.json`` present — reloaded via
  :func:`~repro.core.persist.load_index`);
* a field file (``.npy`` heights or ``.npz`` TIN — indexed on open).

Example::

    facade = EngineFacade()
    facade.open_field("terrain", "terrain-index/")
    result = facade.query("terrain", 300.0, 320.0, tenant="alice")
    batch = facade.batch("terrain", [(300, 320), (100, 150)])
    facade.snapshot("terrain", "terrain-index/")
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..field.base import Field
from ..obs.trace import Tracer
from ..storage import IOStats
from .base import EstimateMode, FaultMode, ValueIndex
from .batch import BatchQueryEngine, BatchResult, DEFAULT_BATCH_CACHE_PAGES
from .parallel import ParallelQueryEngine
from .persist import load_index, save_index
from .query import QueryResult, ValueQuery


class FacadeError(Exception):
    """Base class for facade-level failures (not engine/storage faults)."""


class UnknownFieldError(FacadeError):
    """A verb named a field that is not open."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        self.name = name
        super().__init__(
            f"no open field named {name!r}"
            + (f" (open: {', '.join(sorted(known))})" if known
               else " (no fields are open)"))


class FieldExistsError(FacadeError):
    """``open_field`` named a field that is already open."""


class FieldHandle:
    """One open field: its index, engine settings, and request lock."""

    __slots__ = ("name", "index", "workers", "cache_pages", "source",
                 "lock", "queries", "updates")

    def __init__(self, name: str, index: ValueIndex, workers: int,
                 cache_pages: int, source: str) -> None:
        self.name = name
        self.index = index
        self.workers = workers
        self.cache_pages = cache_pages
        self.source = source
        #: Serializes engine access: the engines mutate index state
        #: (fault mode, tracer, pool capacities) and are not reentrant.
        self.lock = threading.Lock()
        self.queries = 0
        self.updates = 0

    def pools(self) -> list:
        """Every buffer pool requests on this field read through."""
        pools = [self.index.store.pool]
        tree = getattr(self.index, "tree", None)
        if tree is not None:
            pools.append(tree.pool)
        return pools


class EngineFacade:
    """Named-field registry + the five engine verbs behind one API.

    Parameters
    ----------
    default_workers:
        Worker-thread budget a field opens with when ``open_field`` does
        not override it (1 = serial engine).
    default_cache_pages:
        Shared buffer-pool capacity lent to an engine per batch, as in
        :class:`~repro.core.batch.BatchQueryEngine`.
    index_factory:
        Callable ``field -> ValueIndex`` used when a source needs
        indexing (default: I-Hilbert, the paper's winner).
    """

    def __init__(self, default_workers: int = 1,
                 default_cache_pages: int = DEFAULT_BATCH_CACHE_PAGES,
                 index_factory=None) -> None:
        if default_workers < 1:
            raise ValueError(
                f"default_workers must be >= 1, got {default_workers}")
        if default_cache_pages < 0:
            raise ValueError(f"default_cache_pages must be >= 0, "
                             f"got {default_cache_pages}")
        if index_factory is None:
            from .ihilbert import IHilbertIndex
            index_factory = IHilbertIndex
        self.default_workers = default_workers
        self.default_cache_pages = default_cache_pages
        self.index_factory = index_factory
        self._fields: dict[str, FieldHandle] = {}
        self._lock = threading.Lock()

    # -- registry -----------------------------------------------------------

    def open_field(self, name: str, source, *, workers: int | None = None,
                   cache_pages: int | None = None) -> dict:
        """Open ``source`` under ``name`` and return its description.

        ``source`` may be a built index, an in-memory field, a saved
        index directory, or a field file (see module docstring).
        Opening an already-open name raises :class:`FieldExistsError`.
        """
        workers = self.default_workers if workers is None else workers
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cache_pages = (self.default_cache_pages if cache_pages is None
                       else cache_pages)
        if cache_pages < 0:
            raise ValueError(
                f"cache_pages must be >= 0, got {cache_pages}")
        index, origin = self._resolve_source(source)
        with self._lock:
            if name in self._fields:
                raise FieldExistsError(f"field {name!r} is already open")
            handle = FieldHandle(name, index, workers, cache_pages, origin)
            self._fields[name] = handle
        return self.describe(name)

    def _resolve_source(self, source) -> tuple[ValueIndex, str]:
        """Build/load an index from any supported source kind."""
        if isinstance(source, ValueIndex):
            return source, "index-object"
        if isinstance(source, Field):
            return self.index_factory(source), "field-object"
        path = Path(source)
        if path.is_dir():
            return load_index(path), str(path)
        if path.suffix == ".npy":
            from ..field.dem import DEMField
            return self.index_factory(DEMField(np.load(path))), str(path)
        if path.suffix == ".npz":
            from ..field.tin import TINField
            data = np.load(path)
            for key in ("points", "values"):
                if key not in data:
                    raise FacadeError(
                        f"{path}: TIN archives need 'points' and "
                        f"'values' arrays (optional 'triangles')")
            triangles = data["triangles"] if "triangles" in data else None
            field = TINField(data["points"], data["values"],
                             triangles=triangles)
            return self.index_factory(field), str(path)
        raise FacadeError(
            f"{path}: unsupported field source (expected an index "
            f"directory, .npy heights, or a .npz TIN)")

    def bulk_build(self, name: str, source, *, method: str = "I-Hilbert",
                   workers: int | None = None,
                   cache_pages: int | None = None,
                   **build_kwargs) -> dict:
        """Bulk-build ``source`` and open the result under ``name``.

        ``source`` must be an in-memory :class:`~repro.field.base.Field`
        or a field file (``.npy`` heights / ``.npz`` TIN) — saved index
        directories are already built.  Extra keyword arguments pass to
        the index constructor (``curve``, ``engine``, ...).  Returns the
        field description extended with the bulk-load timing report
        under ``"bulk"`` (see :class:`~repro.core.bulkload
        .BulkLoadReport`).
        """
        from .bulkload import bulk_build
        if isinstance(source, Field):
            field, origin = source, "field-object"
        else:
            path = Path(source)
            if path.suffix == ".npy":
                from ..field.dem import DEMField
                field, origin = DEMField(np.load(path)), str(path)
            elif path.suffix == ".npz":
                from ..field.tin import TINField
                data = np.load(path)
                for key in ("points", "values"):
                    if key not in data:
                        raise FacadeError(
                            f"{path}: TIN archives need 'points' and "
                            f"'values' arrays (optional 'triangles')")
                triangles = (data["triangles"] if "triangles" in data
                             else None)
                field = TINField(data["points"], data["values"],
                                 triangles=triangles)
                origin = str(path)
            else:
                raise FacadeError(
                    f"{path}: bulk_build needs a field source "
                    f"(.npy heights or .npz TIN), not a built index")
        index, report = bulk_build(field, method=method, **build_kwargs)
        info = self.open_field(name, index, workers=workers,
                               cache_pages=cache_pages)
        self.handle(name).source = origin
        info["source"] = origin
        info["bulk"] = report.to_dict()
        return info

    def close_field(self, name: str) -> None:
        """Forget an open field (its in-memory pages are released)."""
        with self._lock:
            if name not in self._fields:
                raise UnknownFieldError(name, self._fields)
            del self._fields[name]

    def field_names(self) -> list[str]:
        """Names of every open field, sorted."""
        with self._lock:
            return sorted(self._fields)

    def handle(self, name: str) -> FieldHandle:
        """The :class:`FieldHandle` of an open field."""
        with self._lock:
            try:
                return self._fields[name]
            except KeyError:
                raise UnknownFieldError(name, self._fields) from None

    # -- engine verbs -------------------------------------------------------

    def query(self, name: str, lo: float, hi: float, *,
              estimate: EstimateMode = "area",
              on_fault: FaultMode = "raise",
              tenant: str | None = None,
              tracer: Tracer | None = None) -> QueryResult:
        """Run one value query against an open field.

        With ``tracer``, the call's ``query → plan/filter/fetch/
        estimate`` span tree records onto it (installed on the index
        for just this call, under the handle lock) — the hook the
        serving layer uses to join engine spans into a per-request
        trace.
        """
        handle = self.handle(name)
        query = ValueQuery(float(lo), float(hi))
        with handle.lock, self._tenancy(handle, tenant), \
                self._traced(handle, tracer):
            result = handle.index.query(query, estimate=estimate,
                                        on_fault=on_fault)
            handle.queries += 1
        return result

    def aggregate(self, name: str, kind: str, lo: float, hi: float, *,
                  tolerance: float | None = None, mode: str = "hybrid",
                  tenant: str | None = None,
                  tracer: Tracer | None = None):
        """Approximate COUNT/SUM/AVG/area over a value interval.

        Answered from the index's learned polynomial models with a
        guaranteed error bound; ``tolerance``/``mode`` select the
        accuracy-vs-speed point (see ``repro.core.aggregate``).  Indexes
        without subfield models (e.g. LinearScan) support only
        ``mode="exact"``.
        """
        handle = self.handle(name)
        with handle.lock, self._tenancy(handle, tenant), \
                self._traced(handle, tracer):
            result = handle.index.aggregate(
                kind, float(lo), float(hi), tolerance=tolerance, mode=mode)
            handle.queries += 1
        return result

    def batch(self, name: str, queries: Sequence, *,
              estimate: EstimateMode = "area",
              on_fault: FaultMode = "raise",
              tenant: str | None = None,
              workers: int | None = None,
              cache_pages: int | None = None,
              merge: bool = True,
              tracer: Tracer | None = None) -> BatchResult:
        """Run a batch of value queries through the handle's engine.

        ``queries`` accepts :class:`~repro.core.query.ValueQuery`
        objects or ``(lo, hi)`` pairs.  ``workers``/``cache_pages``
        override the handle's defaults for this batch only; ``tracer``
        records the engine span tree for just this call.
        """
        handle = self.handle(name)
        parsed = [q if isinstance(q, ValueQuery)
                  else ValueQuery(float(q[0]), float(q[1]))
                  for q in queries]
        workers = handle.workers if workers is None else workers
        cache_pages = (handle.cache_pages if cache_pages is None
                       else cache_pages)
        with handle.lock, self._tenancy(handle, tenant), \
                self._traced(handle, tracer):
            if workers > 1:
                engine = ParallelQueryEngine(
                    handle.index, workers=workers,
                    cache_pages=cache_pages, merge=merge)
            else:
                engine = BatchQueryEngine(
                    handle.index, cache_pages=cache_pages, merge=merge)
            result = engine.run(parsed, estimate=estimate,
                                on_fault=on_fault)
            handle.queries += len(parsed)
        return result

    def update(self, name: str, vertex_ids, values,
               tenant: str | None = None,
               tracer: Tracer | None = None) -> int:
        """Apply vertex-value updates to an open field.

        Returns the number of dirty cells rewritten.  Requires the
        field data to be attached (an index reloaded from a directory
        carries records but no vertices; feed it ``update_cells``
        batches directly instead).
        """
        handle = self.handle(name)
        if handle.index.field is None:
            raise FacadeError(
                f"field {name!r} carries no in-memory field data "
                f"(reloaded from disk); vertex updates need the field")
        with handle.lock, self._tenancy(handle, tenant), \
                self._traced(handle, tracer):
            dirty = handle.index.apply_updates(
                np.asarray(vertex_ids, dtype=np.int64),
                np.asarray(values, dtype=np.float32))
            handle.updates += len(dirty)
        return int(len(dirty))

    def snapshot(self, name: str, directory) -> str:
        """Persist an open field's index crash-safely; returns the path."""
        handle = self.handle(name)
        if getattr(handle.index, "tree", None) is None:
            raise FacadeError(
                f"field {name!r} ({handle.index.name}) has no persistent "
                f"form; only grouped indexes snapshot")
        with handle.lock:
            save_index(handle.index, directory)
        return str(directory)

    # -- introspection ------------------------------------------------------

    def describe(self, name: str) -> dict:
        """Build-time description of one open field (JSON-safe)."""
        handle = self.handle(name)
        info = handle.index.describe()
        info.update(field=name, workers=handle.workers,
                    cache_pages=handle.cache_pages, source=handle.source)
        return info

    def stats(self, name: str | None = None) -> dict:
        """Serving statistics: I/O, pool and per-tenant accounting.

        With ``name`` the report covers one field; without it, every
        open field (keyed under ``"fields"``).
        """
        if name is None:
            return {"fields": {n: self.stats(n)
                               for n in self.field_names()}}
        handle = self.handle(name)
        index = handle.index
        io: IOStats = index.stats
        data_pool = index.store.pool
        pool = data_pool.counters()
        tree = getattr(index, "tree", None)
        if tree is not None:
            pool = pool + tree.pool.counters()
        return {
            "field": name,
            "method": index.name,
            "cells": len(index.store),
            "data_pages": index.data_pages,
            "index_pages": index.index_pages,
            "queries": handle.queries,
            "updates": handle.updates,
            "io": {
                "page_reads": io.page_reads,
                "random_reads": io.random_reads,
                "sequential_reads": io.sequential_reads,
                "cache_hits": io.cache_hits,
                "page_writes": io.page_writes,
            },
            "pool": {
                "hits": pool.hits,
                "misses": pool.misses,
                "evictions": pool.evictions,
                "capacity": data_pool.capacity,
                "resident_pages": len(data_pool),
            },
            "tenants": self._merged_tenant_counters(handle),
            "residency": data_pool.tenant_residency(),
        }

    @staticmethod
    def _merged_tenant_counters(handle: FieldHandle) -> dict:
        """Per-tenant traffic summed over every pool of the handle
        (data pages and, for tree-backed indexes, index pages).
        Residency stays per-pool — page ids overlap between files."""
        merged: dict[str, dict] = {}
        for pool in handle.pools():
            for tenant, counters in pool.tenant_counters().items():
                row = merged.setdefault(
                    tenant, {"hits": 0, "misses": 0, "bytes_read": 0})
                row["hits"] += counters.hits
                row["misses"] += counters.misses
                row["bytes_read"] += counters.bytes_read
        return merged

    # -- internals ----------------------------------------------------------

    class _Tenancy:
        """Context manager attributing pool reads to one tenant."""

        __slots__ = ("pools", "tenant", "_saved")

        def __init__(self, pools, tenant):
            self.pools = pools
            self.tenant = tenant
            self._saved = []

        def __enter__(self):
            self._saved = [pool.set_tenant(self.tenant)
                           for pool in self.pools]
            return self

        def __exit__(self, *exc):
            for pool, previous in zip(self.pools, self._saved):
                pool.set_tenant(previous)
            return False

    def _tenancy(self, handle: FieldHandle, tenant: str | None):
        """Bracket an engine call with tenant attribution (no-op when
        ``tenant`` is None).  Callers hold the handle lock, so the
        pool's current-tenant attribute cannot be clobbered
        mid-request."""
        return self._Tenancy(handle.pools() if tenant is not None else [],
                             tenant)

    class _Traced:
        """Install a per-call tracer on the index, restore on exit."""

        __slots__ = ("index", "tracer", "_previous")

        def __init__(self, index, tracer):
            self.index = index
            self.tracer = tracer
            self._previous = None

        def __enter__(self):
            if self.tracer is not None:
                self._previous = self.index.tracer
                self.tracer.attach(self.index)
            return self

        def __exit__(self, *exc):
            if self.tracer is not None:
                self.index.tracer = self._previous
            return False

    def _traced(self, handle: FieldHandle, tracer: Tracer | None):
        """Bracket an engine call with a caller-supplied tracer (no-op
        when ``tracer`` is None).  Callers hold the handle lock, so the
        index's tracer slot cannot be clobbered mid-request; the
        parallel engine parks/restores ``index.tracer`` itself inside
        this bracket, which composes (its restore happens first)."""
        return self._Traced(handle.index, tracer)

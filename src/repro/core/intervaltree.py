"""Main-memory Interval tree baseline (paper §2.3 related work).

The isosurface/isoline literature the paper builds on indexed cell
intervals with Edelsbrunner's *Interval tree* — a main-memory structure.
The paper dismisses it for large field databases precisely because it is
memory-resident; this implementation makes that comparison concrete: the
``ITreeIndex`` access method answers the filtering step entirely in RAM
(no index I/O at all) but still pays data-file I/O to fetch candidate
records, and its memory footprint scales with the cell count.

The structure is the classic static centered interval tree: each node
stores the intervals containing its center value, sorted by low and by
high endpoint, so a stabbing query costs O(log n + answer).
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..storage import IOStats
from .base import ValueIndex


class IntervalTreeNode:
    """One node of a centered interval tree."""

    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: float, by_low: np.ndarray,
                 by_high: np.ndarray) -> None:
        self.center = center
        #: Intervals containing ``center``, ids sorted by low endpoint.
        self.by_low = by_low          # (k, 2) columns: low, id
        #: Same intervals, ids sorted by descending high endpoint.
        self.by_high = by_high        # (k, 2) columns: high, id
        self.left: IntervalTreeNode | None = None
        self.right: IntervalTreeNode | None = None


def build_interval_tree(lows: np.ndarray, highs: np.ndarray,
                        ids: np.ndarray) -> IntervalTreeNode | None:
    """Build a centered interval tree over ``[lows[i], highs[i]]``."""
    if len(lows) == 0:
        return None
    center = float(np.median(np.concatenate([lows, highs])))
    here = (lows <= center) & (highs >= center)
    left_mask = highs < center
    right_mask = lows > center
    order_low = np.argsort(lows[here], kind="stable")
    order_high = np.argsort(-highs[here], kind="stable")
    node = IntervalTreeNode(
        center,
        np.column_stack([lows[here][order_low], ids[here][order_low]]),
        np.column_stack([highs[here][order_high],
                         ids[here][order_high]]),
    )
    node.left = build_interval_tree(lows[left_mask], highs[left_mask],
                                    ids[left_mask])
    node.right = build_interval_tree(lows[right_mask], highs[right_mask],
                                     ids[right_mask])
    return node


def query_interval_tree(root: IntervalTreeNode | None, lo: float,
                        hi: float) -> list[int]:
    """Ids of stored intervals intersecting the closed query [lo, hi]."""
    result: list[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if hi < node.center:
            # Only intervals whose low endpoint is <= hi can intersect.
            lows = node.by_low[:, 0]
            cut = int(np.searchsorted(lows, hi, side="right"))
            result.extend(int(i) for i in node.by_low[:cut, 1])
            stack.append(node.left)
        elif lo > node.center:
            highs = -node.by_high[:, 0]
            cut = int(np.searchsorted(highs, -lo, side="right"))
            result.extend(int(i) for i in node.by_high[:cut, 1])
            stack.append(node.right)
        else:
            # The query straddles the center: every stored interval here
            # intersects, and both subtrees may contribute.
            result.extend(int(i) for i in node.by_low[:, 1])
            stack.append(node.left)
            stack.append(node.right)
    return result


def tree_height(root: IntervalTreeNode | None) -> int:
    """Height of the tree (0 for empty)."""
    if root is None:
        return 0
    return 1 + max(tree_height(root.left), tree_height(root.right))


def tree_size(root: IntervalTreeNode | None) -> int:
    """Number of stored intervals."""
    if root is None:
        return 0
    return (len(root.by_low) + tree_size(root.left)
            + tree_size(root.right))


class ITreeIndex(ValueIndex):
    """Access method filtering with a main-memory interval tree.

    The filtering step is free of index I/O (the tree lives in RAM, as
    in the isosurface literature); candidate cell records are then
    fetched from the paged data file exactly like I-All does.  The
    comparison against I-Hilbert quantifies the paper's argument that a
    main-memory structure does not address the disk-resident case: the
    data-fetch pattern is as scattered as I-All's.
    """

    name = "I-Tree"

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None) -> None:
        super().__init__(field, cache_pages=cache_pages, stats=stats)
        records = field.cell_records()
        self.store.extend(records)
        self.root = build_interval_tree(
            records["vmin"].astype(np.float64),
            records["vmax"].astype(np.float64),
            np.arange(len(records), dtype=np.int64))

    def describe(self) -> dict:
        info = super().describe()
        info["tree_height"] = tree_height(self.root)
        info["memory_resident"] = True
        return info

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        rids = query_interval_tree(self.root, lo, hi)
        if not rids:
            return np.empty(0, dtype=self.store.dtype)
        rids_arr = np.sort(np.asarray(rids, dtype=np.int64))
        per_page = self.store.records_per_page
        pages = rids_arr // per_page
        slots = rids_arr - pages * per_page
        chunks = []
        start = 0
        for end in range(1, len(pages) + 1):
            if end == len(pages) or pages[end] != pages[start]:
                page_records = self.store.read_page(int(pages[start]))
                chunks.append(page_records[slots[start:end]])
                start = end
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

"""Disjunctive value queries: unions of bands on one field.

Real analyses often ask for unions — "comfortable (18–24°) or frost
(≤ 0°)" — which the paper's machinery answers band by band.  This module
adds the interval algebra to do it correctly: arbitrary input bands are
*normalized* (sorted, overlaps merged) so each cell is counted once and
band areas are additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..storage import IOStats
from .base import EstimateMode, ValueIndex
from .query import ValueQuery


def normalize_bands(bands: list[tuple[float, float]]
                    ) -> list[tuple[float, float]]:
    """Sort bands and merge the ones that overlap or touch.

    The result is the canonical disjoint representation of the union:
    ascending, pairwise disjoint, with touching bands coalesced.
    """
    cleaned = []
    for lo, hi in bands:
        if lo > hi:
            raise ValueError(f"empty band: lo={lo} > hi={hi}")
        cleaned.append((float(lo), float(hi)))
    if not cleaned:
        return []
    cleaned.sort()
    merged = [cleaned[0]]
    for lo, hi in cleaned[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


@dataclass
class MultiBandResult:
    """Outcome of a union-of-bands query."""

    bands: list[tuple[float, float]]        # normalized
    candidate_count: int                    # distinct cells
    area: float | None = None
    per_band_candidates: list[int] = dc_field(default_factory=list)
    io: IOStats = dc_field(default_factory=IOStats)


def union_query(index: ValueIndex, bands: list[tuple[float, float]],
                estimate: EstimateMode = "area") -> MultiBandResult:
    """Answer the union of value bands against one index.

    Bands are normalized first, so results are exact regardless of input
    overlaps; with disjoint bands the per-band answer areas are additive
    and each candidate cell is reported once (cells spanning two bands
    are deduplicated by id).
    """
    normalized = normalize_bands(bands)
    before = index.stats.snapshot()
    seen: set[int] = set()
    per_band: list[int] = []
    area: float | None = 0.0 if estimate == "area" else None
    for lo, hi in normalized:
        records = index._candidates(lo, hi)
        per_band.append(int(len(records)))
        seen.update(int(c) for c in records["cell_id"])
        if estimate == "area":
            area += index.field_type.estimate_area(records, lo, hi)
        elif estimate != "none":
            raise ValueError(
                f"union_query supports estimate='area' or 'none', "
                f"got {estimate!r}")
    return MultiBandResult(
        bands=normalized,
        candidate_count=len(seen),
        area=area,
        per_band_candidates=per_band,
        io=index.stats.diff(before),
    )


def complement_bands(bands: list[tuple[float, float]], lo: float,
                     hi: float) -> list[tuple[float, float]]:
    """Complement of a band union within the value range ``[lo, hi]``.

    Enables difference queries: "NOT between 20 and 30" is the union of
    the complementary bands.
    """
    if lo > hi:
        raise ValueError(f"empty range: lo={lo} > hi={hi}")
    normalized = normalize_bands(bands)
    result: list[tuple[float, float]] = []
    cursor = lo
    for band_lo, band_hi in normalized:
        if band_lo > cursor and band_lo > lo:
            result.append((cursor, min(band_lo, hi)))
        cursor = max(cursor, band_hi)
        if cursor >= hi:
            break
    if cursor < hi:
        result.append((cursor, hi))
    return [(a, b) for a, b in result if a < b]


def intersect_bands(a: list[tuple[float, float]],
                    b: list[tuple[float, float]]
                    ) -> list[tuple[float, float]]:
    """Intersection of two band unions (both normalized first)."""
    left = normalize_bands(a)
    right = normalize_bands(b)
    result: list[tuple[float, float]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        lo = max(left[i][0], right[j][0])
        hi = min(left[i][1], right[j][1])
        if lo <= hi:
            result.append((lo, hi))
        if left[i][1] < right[j][1]:
            i += 1
        else:
            j += 1
    return result


def make_queries(bands: list[tuple[float, float]]) -> list[ValueQuery]:
    """ValueQuery objects for a normalized band list."""
    return [ValueQuery(lo, hi) for lo, hi in normalize_bands(bands)]

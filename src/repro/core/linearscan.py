"""The 'LinearScan' baseline (paper §2.2.2).

No index: every value query reads every cell page front to back and tests
each cell's interval against the query.  All reads are sequential, so the
method is not as catastrophic as its asymptotics suggest — the paper (and
our Fig. 11 reproduction) shows it *beating* I-All at high selectivity.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, Engine, ValueIndex


class LinearScanIndex(ValueIndex):
    """Full-scan access method over the cell record file."""

    name = "LinearScan"

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 engine: Engine = "vectorized") -> None:
        super().__init__(field, cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend, engine=engine)
        self.store.extend(field.cell_records())

    def _apply_cell_updates(self, cell_ids: np.ndarray,
                            records: np.ndarray) -> None:
        # Records are stored in cell order, so rid == cell_id and an
        # update is a plain in-place page rewrite; there is no index
        # structure to maintain.
        for cell_id, record in zip(cell_ids, records):
            self.store.update(int(cell_id), record)

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        with self.tracer.span("fetch") as span:
            if span.enabled:
                span.attrs["path"] = "scan"
            if self.engine == "vectorized":
                return self._candidates_vectorized(lo, hi)
            matches = []
            for page_no in range(self.store.num_pages):
                page = self._read_data_page(page_no)
                if page is None:
                    continue
                # Compare in float64: float32 records vs. a float64 query
                # bound would otherwise round the bound to float32 (NEP 50),
                # disagreeing with the R*-tree's float64 arithmetic.
                mask = ((page["vmin"].astype(np.float64) <= hi)
                        & (page["vmax"].astype(np.float64) >= lo))
                if mask.any():
                    matches.append(page[mask])
        if not matches:
            return np.empty(0, dtype=self.store.dtype)
        if len(matches) == 1:
            return matches[0]
        return np.concatenate(matches)

    def _candidates_vectorized(self, lo: float, hi: float) -> np.ndarray:
        """Whole-scan fetch + one array-wide interval filter.

        Reads the store front to back as a single run and evaluates the
        float64 interval mask over every cell at once — the same
        comparisons, reads, and output order as the page-at-a-time
        loop, minus the per-page interpreter overhead.
        """
        if not self.store.num_pages:
            return np.empty(0, dtype=self.store.dtype)
        block = self._read_data_run(0, self.store.num_pages - 1)
        if block is None:
            return np.empty(0, dtype=self.store.dtype)
        mask = ((block["vmin"].astype(np.float64) <= hi)
                & (block["vmax"].astype(np.float64) >= lo))
        return block[mask]

"""Field value queries and their results (paper §2.2.2).

A value query asks for the regions where ``lo <= F(x) <= hi``; exact-match
and one-sided queries are degenerate cases (``lo == hi``, or an unbounded
side clamped to the field's value range).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..field.extraction import AnswerRegion
from ..storage import IOStats


@dataclass(frozen=True)
class ValueQuery:
    """A closed query interval on the value domain."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(
                f"empty query interval: lo={self.lo} > hi={self.hi}")

    @classmethod
    def exact(cls, value: float) -> "ValueQuery":
        """Exact-match query ``F(x) = value`` (paper: Qinterval = 0)."""
        return cls(value, value)

    @classmethod
    def at_least(cls, value: float, value_max: float) -> "ValueQuery":
        """One-sided query ``F(x) >= value`` clamped to the field range."""
        return cls(value, value_max)

    @classmethod
    def at_most(cls, value: float, value_min: float) -> "ValueQuery":
        """One-sided query ``F(x) <= value`` clamped to the field range."""
        return cls(value_min, value)

    @property
    def length(self) -> float:
        """Extent of the query interval."""
        return self.hi - self.lo


@dataclass
class QueryResult:
    """Outcome of one field value query against one access method."""

    query: ValueQuery
    #: Number of candidate cells whose interval intersects the query.
    candidate_count: int
    #: Total answer area (in cell units for DEM fields), when estimated.
    area: float | None = None
    #: Exact answer polygons, when requested.
    regions: list[AnswerRegion] | None = None
    #: I/O performed by this query (page reads, seq/random split, hits).
    io: IOStats = field(default_factory=IOStats)
    #: Storage faults survived in ``on_fault="skip"`` mode — one
    #: :class:`~repro.storage.faults.PageFault` per skipped page.  Empty
    #: for a clean query (and always empty in ``on_fault="raise"`` mode,
    #: where the fault propagates as a typed error instead).
    faults: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.candidate_count < 0:
            raise ValueError("candidate_count cannot be negative")

    @property
    def degraded(self) -> bool:
        """True when storage faults forced this query to skip pages.

        A degraded result is a *lower bound*: every reported candidate
        is genuine, but cells on the skipped pages are missing.
        """
        return bool(self.faults)

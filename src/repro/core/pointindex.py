"""Conventional (Q1) point queries through a 2-D R*-tree (paper §2.2.1).

"What is the value at point p?" — find the cell containing p with a
spatial index over cell MBRs, then interpolate from the cell's sample
points.  Included because the paper frames value queries against this
well-solved baseline; it also gives the examples a full query surface.
"""

from __future__ import annotations

from ..field.base import Field
from ..field.interpolation import linear_triangle
from ..geometry import Rect
from ..rstar import RStarTree
from ..storage import DiskManager, IOStats, RecordStore


class PointIndex:
    """Spatial index answering point (Q1) queries over a field."""

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None) -> None:
        self.field = field
        self.field_type = type(field)
        self.stats = stats if stats is not None else IOStats()
        self.data_disk = DiskManager(stats=self.stats, name="q1-data")
        self.store = RecordStore(self.data_disk, field.record_dtype,
                                 cache_pages=cache_pages)
        records = field.cell_records()
        self.store.extend(records)
        self.index_disk = DiskManager(stats=self.stats, name="q1-tree")
        self.tree = RStarTree(dim=2, disk=self.index_disk,
                              cache_pages=cache_pages)
        mbrs = self.field_type.record_mbrs(records)
        rects = [Rect((m[0], m[1]), (m[2], m[3])) for m in mbrs]
        self.tree.bulk_load(rects, range(len(rects)))
        self.tree.flush()

    def value_at(self, x: float, y: float) -> float | None:
        """Interpolated field value at ``(x, y)``; None outside the domain.

        Implements the paper's Q1 pipeline: locate candidate cells via the
        spatial index, read their records, test exact containment, and
        apply the interpolation function to the cell's sample points.
        """
        rx, ry = self.field.to_record_space(x, y)
        probe = Rect.from_point((rx, ry))
        for rid in self.tree.search(probe):
            record = self.store.get(int(rid))
            for points, values in self.field_type.record_triangles(record):
                if _contains(points, (rx, ry)):
                    return linear_triangle((rx, ry), points, values)
        return None

    def clear_caches(self) -> None:
        """Drop caches and forget disk positions (cold-query setting)."""
        self.store.pool.clear()
        self.tree.pool.clear()
        self.data_disk.reset_head()
        self.index_disk.reset_head()


def _contains(points, point, eps: float = 1e-9) -> bool:
    (x0, y0), (x1, y1), (x2, y2) = points
    px, py = point
    d1 = (x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)
    d2 = (x2 - x1) * (py - y1) - (px - x1) * (y2 - y1)
    d3 = (x0 - x2) * (py - y2) - (px - x2) * (y0 - y2)
    has_neg = (d1 < -eps) or (d2 < -eps) or (d3 < -eps)
    has_pos = (d1 > eps) or (d2 > eps) or (d3 > eps)
    return not (has_neg and has_pos)

"""Common machinery of the three access methods.

Every method stores the field's cell records in a paged
:class:`~repro.storage.records.RecordStore` and answers a value query in
the paper's two steps: *filter* (produce candidate cell records whose
interval intersects the query) and *estimate* (compute answer regions from
the candidates).  Subclasses only implement the filtering step; storage,
I/O accounting and estimation are shared, which guarantees the comparison
between methods is apples-to-apples.
"""

from __future__ import annotations

import abc
from typing import Literal

import numpy as np

from ..field.base import Field
from ..field.extraction import extract_regions, total_area
from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER
from ..storage import (CorruptPageError, DiskManager, FaultInjector, IOStats,
                       MmapDiskManager, PAGE_SIZE, PageFault, RecordStore,
                       RetryingDiskManager, RetryingMmapDiskManager,
                       RetryPolicy, TransientIOError)
from .query import QueryResult, ValueQuery

EstimateMode = Literal["none", "area", "regions"]
FaultMode = Literal["raise", "skip"]
DiskBackend = Literal["list", "mmap"]

#: backend name -> (plain disk class, retrying disk class)
_DISK_BACKENDS = {
    "list": (DiskManager, RetryingDiskManager),
    "mmap": (MmapDiskManager, RetryingMmapDiskManager),
}

_QUERIES = REGISTRY.counter(
    "repro_queries_total",
    "Value queries executed, per access method.")
_QUERY_PAGES = REGISTRY.histogram(
    "repro_query_page_reads",
    "Accounted page reads per value query, per access method.")
_QUERY_CANDIDATES = REGISTRY.histogram(
    "repro_query_candidates",
    "Candidate cells produced by the filtering step, per access method.")
_QUERY_DEGRADED = REGISTRY.counter(
    "repro_queries_degraded_total",
    "Queries that skipped unreadable data pages (on_fault='skip'), "
    "per access method.")


class ValueIndex(abc.ABC):
    """Base class for field-value access methods.

    Parameters
    ----------
    field:
        The continuous field to index.  Its cell records are copied into
        paged storage at construction; queries run purely from pages.
    cache_pages:
        Buffer-pool capacity for the data file (0 = every access hits the
        simulated disk, the paper's cold setting).
    stats:
        Optional shared I/O counter (a private one is created otherwise).
    page_size:
        Page size of the simulated store (default 4 KiB, the paper's).
    retry_policy:
        When given, every disk this index creates is a
        :class:`~repro.storage.retry.RetryingDiskManager` using this
        policy, so transient read faults are retried transparently.
        ``None`` (default) creates plain disks: the first transient
        fault propagates.
    disk_backend:
        Page-file implementation: ``"list"`` (default) keeps one bytes
        object per page; ``"mmap"`` backs every disk with an anonymous
        memory map and serves zero-copy :class:`memoryview` payloads
        with lazily batch-verified checksums (see
        :class:`~repro.storage.mmapdisk.MmapDiskManager`).  Both honour
        ``retry_policy`` and behave identically under fault injection.
    """

    #: Human-readable method name, as used in the paper's plots.
    name: str = "method"

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list") -> None:
        self.field = field
        self.field_type = type(field)
        self.stats = stats if stats is not None else IOStats()
        #: Span recorder for the query lifecycle; the default no-op
        #: tracer is free — install a real one with ``Tracer.attach``.
        self.tracer = NULL_TRACER
        self.page_size = page_size
        self.retry_policy = retry_policy
        if disk_backend not in _DISK_BACKENDS:
            raise ValueError(
                f"unknown disk_backend {disk_backend!r}; expected one of "
                f"{sorted(_DISK_BACKENDS)}")
        self.disk_backend = disk_backend
        self._fault_mode: FaultMode = "raise"
        self._query_faults: list[PageFault] = []
        self.data_disk = self._make_disk("data")
        self.store = RecordStore(self.data_disk, field.record_dtype,
                                 cache_pages=cache_pages)

    def _make_disk(self, name: str) -> DiskManager:
        """Create a page file honouring this index's backend and retry
        policy."""
        plain_cls, retrying_cls = _DISK_BACKENDS[self.disk_backend]
        if self.retry_policy is not None:
            return retrying_cls(stats=self.stats, name=name,
                                page_size=self.page_size,
                                retry_policy=self.retry_policy)
        return plain_cls(stats=self.stats, name=name,
                         page_size=self.page_size)

    def inject_faults(self, injector: FaultInjector) -> FaultInjector:
        """Attach a fault injector to every disk this index owns.

        Covers the data file and, for indexed methods, the index file;
        returns the injector for chaining.  Pass ``None`` to detach.
        """
        self.data_disk.fault_injector = injector
        index_disk = getattr(self, "index_disk", None)
        if index_disk is not None:
            index_disk.fault_injector = injector
        return injector

    # -- query pipeline ----------------------------------------------------

    def query(self, query: ValueQuery,
              estimate: EstimateMode = "area",
              on_fault: FaultMode = "raise") -> QueryResult:
        """Run one field value query and return its result.

        ``estimate`` selects the estimation step output: ``"none"`` stops
        after filtering (candidates only), ``"area"`` computes the total
        answer area with the vectorized closed form, ``"regions"``
        additionally materializes exact answer polygons.

        ``on_fault`` selects how storage faults surface.  ``"raise"``
        (default) propagates the typed error
        (:class:`~repro.storage.faults.CorruptPageError` or
        :class:`~repro.storage.faults.TransientIOError`) — the query
        never returns a silently wrong answer.  ``"skip"`` degrades
        gracefully: a *data* page that cannot be read is skipped, the
        fault is reported in ``result.faults``, and the answer is an
        explicit lower bound (``result.degraded`` is True).  Index/tree
        page faults always raise — a damaged index cannot bound what it
        missed.

        With a real tracer installed (see
        :meth:`repro.obs.trace.Tracer.attach`), the run records a
        ``query`` span whose children cover the lifecycle phases
        (``plan``/``filter``/``fetch`` from the method's filtering step,
        ``estimate`` from the estimation step).
        """
        if on_fault not in ("raise", "skip"):
            raise ValueError(
                f"on_fault must be 'raise' or 'skip', got {on_fault!r}")
        tracer = self.tracer
        before = self.stats.snapshot()
        self._fault_mode = on_fault
        self._query_faults = []
        try:
            if tracer.enabled:
                with tracer.span("query", {"method": self.name,
                                           "lo": query.lo,
                                           "hi": query.hi}) as span:
                    candidates = self._candidates(query.lo, query.hi)
                    with tracer.span("estimate", {"mode": estimate}):
                        result = self._finish(query, candidates, estimate)
                    span.attrs["candidates"] = result.candidate_count
                    if self._query_faults:
                        span.attrs["faults"] = len(self._query_faults)
            else:
                candidates = self._candidates(query.lo, query.hi)
                result = self._finish(query, candidates, estimate)
            result.faults = self._query_faults
        finally:
            self._fault_mode = "raise"
            self._query_faults = []
        result.io = self.stats.diff(before)
        if REGISTRY.enabled:
            _QUERIES.inc(1, method=self.name)
            _QUERY_PAGES.observe(result.io.page_reads, method=self.name)
            _QUERY_CANDIDATES.observe(result.candidate_count,
                                      method=self.name)
            if result.faults:
                _QUERY_DEGRADED.inc(1, method=self.name)
        return result

    def _read_data_page(self, page_no: int) -> np.ndarray | None:
        """Read one store page, honouring the query's fault mode.

        In ``on_fault="skip"`` mode an unreadable *data* page is
        recorded as a :class:`~repro.storage.faults.PageFault` and
        ``None`` is returned so the caller drops just that page; in the
        default mode the typed error propagates unchanged.
        """
        try:
            return self.store.read_page(page_no)
        except (CorruptPageError, TransientIOError) as exc:
            if self._fault_mode != "skip":
                raise
            self.store.pool.invalidate(self.store.page_ids[page_no])
            self._query_faults.append(PageFault(
                disk=exc.disk, page_id=exc.page_id,
                kind=type(exc).__name__, detail=str(exc)))
            return None

    def _finish(self, query: ValueQuery, candidates: np.ndarray,
                estimate: EstimateMode) -> QueryResult:
        """Estimation step: turn filtered candidates into a result.

        Shared by :meth:`query` and the batch engine, which produces the
        candidate set differently (one fetch per group of overlapping
        queries) but must estimate identically.
        """
        result = QueryResult(query=query,
                             candidate_count=int(len(candidates)))
        if estimate == "area":
            result.area = self.field_type.estimate_area(
                candidates, query.lo, query.hi)
        elif estimate == "regions":
            regions = extract_regions(self.field_type, candidates,
                                      query.lo, query.hi)
            result.regions = regions
            result.area = total_area(regions)
        elif estimate != "none":
            raise ValueError(f"unknown estimate mode: {estimate!r}")
        return result

    def clear_caches(self) -> None:
        """Drop caches and forget disk positions (cold-query setting)."""
        self.store.pool.clear()
        self.data_disk.reset_head()

    # -- introspection ------------------------------------------------------

    @property
    def data_pages(self) -> int:
        """Pages occupied by the cell records."""
        return self.store.num_pages

    @property
    def index_pages(self) -> int:
        """Pages occupied by index structures (0 for a plain scan)."""
        return 0

    def describe(self) -> dict:
        """Build-time summary used by reports and tests."""
        return {
            "method": self.name,
            "cells": len(self.store),
            "data_pages": self.data_pages,
            "index_pages": self.index_pages,
        }

    # -- to implement ---------------------------------------------------------

    @abc.abstractmethod
    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        """Records of every cell whose value interval intersects [lo, hi]."""

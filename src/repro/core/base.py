"""Common machinery of the three access methods.

Every method stores the field's cell records in a paged
:class:`~repro.storage.records.RecordStore` and answers a value query in
the paper's two steps: *filter* (produce candidate cell records whose
interval intersects the query) and *estimate* (compute answer regions from
the candidates).  Subclasses only implement the filtering step; storage,
I/O accounting and estimation are shared, which guarantees the comparison
between methods is apples-to-apples.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from pathlib import Path
from typing import Literal

import numpy as np

from ..field.base import Field
from ..field.extraction import extract_regions, total_area
from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER
from ..storage import (CorruptPageError, DiskManager, FaultInjector, IOStats,
                       MmapDiskManager, PAGE_SIZE, PageFault, RecordStore,
                       RetryingDiskManager, RetryingMmapDiskManager,
                       RetryPolicy, SimulatedCrash, TransientIOError,
                       WAL_CRASH_POINTS, WriteAheadLog)
from .query import QueryResult, ValueQuery

EstimateMode = Literal["none", "area", "regions"]
FaultMode = Literal["raise", "skip"]
#: Execution engine for the filtering step: ``"vectorized"`` (default)
#: fetches candidate page runs as one batch and evaluates the interval
#: filter as whole-array operations; ``"scalar"`` keeps the original
#: page-at-a-time loops.  Both produce byte-identical answers and
#: IOStats — the scalar engine is the escape hatch the equivalence
#: tests cross-check against.
Engine = Literal["vectorized", "scalar"]
#: Either a named built-in backend or an explicit
#: ``(plain disk class, retrying disk class)`` pair — the hook custom
#: tiers (e.g. :func:`repro.storage.remote.remote_backend`) plug into.
DiskBackend = Literal["list", "mmap"] | tuple[type, type]

#: backend name -> (plain disk class, retrying disk class)
_DISK_BACKENDS = {
    "list": (DiskManager, RetryingDiskManager),
    "mmap": (MmapDiskManager, RetryingMmapDiskManager),
}

_QUERIES = REGISTRY.counter(
    "repro_queries_total",
    "Value queries executed, per access method.")
_QUERY_PAGES = REGISTRY.histogram(
    "repro_query_page_reads",
    "Accounted page reads per value query, per access method.")
_QUERY_CANDIDATES = REGISTRY.histogram(
    "repro_query_candidates",
    "Candidate cells produced by the filtering step, per access method.")
_QUERY_DEGRADED = REGISTRY.counter(
    "repro_queries_degraded_total",
    "Queries that skipped unreadable data pages (on_fault='skip'), "
    "per access method.")
_UPDATES = REGISTRY.counter(
    "repro_cell_updates_total",
    "Cell records rewritten by live updates, per access method.")
_MAINT_READS = REGISTRY.counter(
    "repro_maintenance_page_reads_total",
    "Page reads charged to index maintenance (never to queries), "
    "per access method.")
_MAINT_WRITES = REGISTRY.counter(
    "repro_maintenance_page_writes_total",
    "Page writes charged to index maintenance, per access method.")

#: Crash points honoured by :meth:`ValueIndex.update_cells`: the
#: index-level ``pre-wal`` (before anything is durable) and
#: ``wal-appended`` (the batch is acknowledged, no page written yet —
#: the window the WAL exists for), plus the WAL's own internal points.
UPDATE_CRASH_POINTS = ("pre-wal", "wal-appended") + WAL_CRASH_POINTS


class ValueIndex(abc.ABC):
    """Base class for field-value access methods.

    Parameters
    ----------
    field:
        The continuous field to index.  Its cell records are copied into
        paged storage at construction; queries run purely from pages.
    cache_pages:
        Buffer-pool capacity for the data file (0 = every access hits the
        simulated disk, the paper's cold setting).
    stats:
        Optional shared I/O counter (a private one is created otherwise).
    page_size:
        Page size of the simulated store (default 4 KiB, the paper's).
    retry_policy:
        When given, every disk this index creates is a
        :class:`~repro.storage.retry.RetryingDiskManager` using this
        policy, so transient read faults are retried transparently.
        ``None`` (default) creates plain disks: the first transient
        fault propagates.
    disk_backend:
        Page-file implementation: ``"list"`` (default) keeps one bytes
        object per page; ``"mmap"`` backs every disk with an anonymous
        memory map and serves zero-copy :class:`memoryview` payloads
        with lazily batch-verified checksums (see
        :class:`~repro.storage.mmapdisk.MmapDiskManager`).  Both honour
        ``retry_policy`` and behave identically under fault injection.
    """

    #: Human-readable method name, as used in the paper's plots.
    name: str = "method"

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 engine: Engine = "vectorized") -> None:
        if engine not in ("vectorized", "scalar"):
            raise ValueError(
                f"engine must be 'vectorized' or 'scalar', got {engine!r}")
        self.engine = engine
        self.field = field
        self.field_type = type(field)
        self.stats = stats if stats is not None else IOStats()
        #: I/O spent maintaining the index under updates — kept apart
        #: from :attr:`stats` so the paper's per-query page counts stay
        #: honest while the field is being written to.
        self.maint_stats = IOStats()
        #: Write-ahead log making update batches durable before any
        #: in-place page write; ``None`` until :meth:`attach_wal`.
        self.wal: WriteAheadLog | None = None
        self._updated = False
        self._stat_cache: dict[int, object] = {}
        #: Span recorder for the query lifecycle; the default no-op
        #: tracer is free — install a real one with ``Tracer.attach``.
        self.tracer = NULL_TRACER
        self.page_size = page_size
        self.retry_policy = retry_policy
        if isinstance(disk_backend, str):
            if disk_backend not in _DISK_BACKENDS:
                raise ValueError(
                    f"unknown disk_backend {disk_backend!r}; expected one "
                    f"of {sorted(_DISK_BACKENDS)} or a (plain, retrying) "
                    f"disk-class pair")
        else:
            try:
                plain_cls, retrying_cls = disk_backend
            except (TypeError, ValueError):
                raise ValueError(
                    f"disk_backend must be a backend name or a "
                    f"(plain, retrying) disk-class pair, got "
                    f"{disk_backend!r}") from None
            for cls in (plain_cls, retrying_cls):
                if not (isinstance(cls, type)
                        and issubclass(cls, DiskManager)):
                    raise ValueError(
                        f"disk_backend classes must subclass DiskManager, "
                        f"got {cls!r}")
            disk_backend = (plain_cls, retrying_cls)
        self.disk_backend = disk_backend
        self._fault_mode: FaultMode = "raise"
        self._query_faults: list[PageFault] = []
        self.data_disk = self._make_disk("data")
        self.store = RecordStore(self.data_disk, field.record_dtype,
                                 cache_pages=cache_pages)

    def _make_disk(self, name: str) -> DiskManager:
        """Create a page file honouring this index's backend and retry
        policy."""
        plain_cls, retrying_cls = (
            _DISK_BACKENDS[self.disk_backend]
            if isinstance(self.disk_backend, str) else self.disk_backend)
        if self.retry_policy is not None:
            return retrying_cls(stats=self.stats, name=name,
                                page_size=self.page_size,
                                retry_policy=self.retry_policy)
        return plain_cls(stats=self.stats, name=name,
                         page_size=self.page_size)

    def inject_faults(self, injector: FaultInjector) -> FaultInjector:
        """Attach a fault injector to every disk this index owns.

        Covers the data file and, for indexed methods, the index file;
        returns the injector for chaining.  Pass ``None`` to detach.
        """
        self.data_disk.fault_injector = injector
        index_disk = getattr(self, "index_disk", None)
        if index_disk is not None:
            index_disk.fault_injector = injector
        return injector

    # -- query pipeline ----------------------------------------------------

    def query(self, query: ValueQuery,
              estimate: EstimateMode = "area",
              on_fault: FaultMode = "raise") -> QueryResult:
        """Run one field value query and return its result.

        ``estimate`` selects the estimation step output: ``"none"`` stops
        after filtering (candidates only), ``"area"`` computes the total
        answer area with the vectorized closed form, ``"regions"``
        additionally materializes exact answer polygons.

        ``on_fault`` selects how storage faults surface.  ``"raise"``
        (default) propagates the typed error
        (:class:`~repro.storage.faults.CorruptPageError` or
        :class:`~repro.storage.faults.TransientIOError`) — the query
        never returns a silently wrong answer.  ``"skip"`` degrades
        gracefully: a *data* page that cannot be read is skipped, the
        fault is reported in ``result.faults``, and the answer is an
        explicit lower bound (``result.degraded`` is True).  Index/tree
        page faults always raise — a damaged index cannot bound what it
        missed.

        With a real tracer installed (see
        :meth:`repro.obs.trace.Tracer.attach`), the run records a
        ``query`` span whose children cover the lifecycle phases
        (``plan``/``filter``/``fetch`` from the method's filtering step,
        ``estimate`` from the estimation step).
        """
        if on_fault not in ("raise", "skip"):
            raise ValueError(
                f"on_fault must be 'raise' or 'skip', got {on_fault!r}")
        tracer = self.tracer
        before = self.stats.snapshot()
        self._fault_mode = on_fault
        self._query_faults = []
        try:
            if tracer.enabled:
                with tracer.span("query", {"method": self.name,
                                           "lo": query.lo,
                                           "hi": query.hi}) as span:
                    candidates = self._candidates(query.lo, query.hi)
                    with tracer.span("estimate", {"mode": estimate}):
                        result = self._finish(query, candidates, estimate)
                    span.attrs["candidates"] = result.candidate_count
                    if self._query_faults:
                        span.attrs["faults"] = len(self._query_faults)
            else:
                candidates = self._candidates(query.lo, query.hi)
                result = self._finish(query, candidates, estimate)
            result.faults = self._query_faults
        finally:
            self._fault_mode = "raise"
            self._query_faults = []
        result.io = self.stats.diff(before)
        if REGISTRY.enabled:
            _QUERIES.inc(1, method=self.name)
            _QUERY_PAGES.observe(result.io.page_reads, method=self.name)
            _QUERY_CANDIDATES.observe(result.candidate_count,
                                      method=self.name)
            if result.faults:
                _QUERY_DEGRADED.inc(1, method=self.name)
        return result

    def _read_data_page(self, page_no: int) -> np.ndarray | None:
        """Read one store page, honouring the query's fault mode.

        In ``on_fault="skip"`` mode an unreadable *data* page is
        recorded as a :class:`~repro.storage.faults.PageFault` and
        ``None`` is returned so the caller drops just that page; in the
        default mode the typed error propagates unchanged.
        """
        try:
            return self.store.read_page(page_no)
        except (CorruptPageError, TransientIOError) as exc:
            if self._fault_mode != "skip":
                raise
            self.store.pool.invalidate(self.store.page_ids[page_no])
            self._query_faults.append(PageFault(
                disk=exc.disk, page_id=exc.page_id,
                kind=type(exc).__name__, detail=str(exc)))
            return None

    def _vector_fetch_ok(self) -> bool:
        """True when the batched fetch path may be used for this query.

        Requires the vectorized engine and a clean fault regime: with a
        fault injector attached the disk must observe every page access
        individually (injection schedules are per-read), and in
        ``on_fault="skip"`` mode faults must be attributable to single
        pages — both are what the per-page scalar loop provides.
        """
        return (self.engine == "vectorized"
                and self._fault_mode == "raise"
                and self.data_disk.fault_injector is None)

    def _read_data_run(self, first_page: int,
                       last_page: int) -> np.ndarray | None:
        """Fetch a contiguous store page run as one decoded array.

        On the clean path this is one :meth:`RecordStore.read_pages`
        batch (accounting identical to a serial page loop); when a
        fault injector is attached or the query runs in skip mode it
        degrades to per-page :meth:`_read_data_page` calls so fault
        semantics are untouched.  Returns ``None`` when every page of
        the run was skipped.
        """
        if self._vector_fetch_ok():
            return self.store.read_pages(first_page, last_page)
        parts = []
        for page_no in range(first_page, last_page + 1):
            page = self._read_data_page(page_no)
            if page is not None:
                parts.append(page)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _finish(self, query: ValueQuery, candidates: np.ndarray,
                estimate: EstimateMode) -> QueryResult:
        """Estimation step: turn filtered candidates into a result.

        Shared by :meth:`query` and the batch engine, which produces the
        candidate set differently (one fetch per group of overlapping
        queries) but must estimate identically.
        """
        result = QueryResult(query=query,
                             candidate_count=int(len(candidates)))
        if estimate == "area":
            result.area = self.field_type.estimate_area(
                candidates, query.lo, query.hi)
        elif estimate == "regions":
            regions = extract_regions(self.field_type, candidates,
                                      query.lo, query.hi)
            result.regions = regions
            result.area = total_area(regions)
        elif estimate != "none":
            raise ValueError(f"unknown estimate mode: {estimate!r}")
        return result

    def clear_caches(self) -> None:
        """Drop caches and forget disk positions (cold-query setting)."""
        self.store.pool.clear()
        self.data_disk.reset_head()

    # -- live updates -------------------------------------------------------

    @contextmanager
    def _maintenance(self):
        """Charge the enclosed I/O to :attr:`maint_stats`, not queries.

        The shared :attr:`stats` counter is snapshotted, the work runs,
        and the delta is moved wholesale to the maintenance counter —
        the same rollback idiom the EXPLAIN metadata scan uses, so
        nested maintenance sections compose (an inner section's delta
        is already gone when the outer one diffs).
        """
        before = self.stats.snapshot()
        try:
            yield
        finally:
            delta = self.stats.diff(before)
            self.stats.restore(before)
            self.maint_stats += delta
            if REGISTRY.enabled:
                if delta.page_reads:
                    _MAINT_READS.inc(delta.page_reads, method=self.name)
                if delta.page_writes:
                    _MAINT_WRITES.inc(delta.page_writes, method=self.name)

    def attach_wal(self, path, replay: bool = False) -> WriteAheadLog:
        """Open (creating if needed) a write-ahead log for this index.

        From here on every :meth:`update_cells` batch is logged and
        fsynced *before* any page is written — the acknowledgment
        point.  An existing log with pending batches is refused unless
        ``replay=True``, in which case they are re-applied first
        (idempotent, so replaying onto an index that already saw them
        is harmless).
        """
        wal = WriteAheadLog(path)
        if wal.pending and not replay:
            wal.close()
            raise ValueError(
                f"{path}: write-ahead log holds {len(wal.pending)} pending "
                f"batches; open with replay=True or checkpoint it first")
        for batch in wal.pending:
            self._apply_update_batch(batch.cell_ids,
                                     batch.decode(self.store.dtype))
        self.wal = wal
        return wal

    def apply_updates(self, vertex_ids, values,
                      crash_point: str | None = None) -> np.ndarray:
        """Ingest new vertex measurements; returns the dirty cell ids.

        The field maps vertices to the cells they touch
        (:meth:`~repro.field.base.Field.apply_updates`), then the dirty
        records flow through :meth:`update_cells`.  Values are absolute
        replacement samples, so applying the same batch to several
        indexes sharing one field object is safe and keeps them equal.
        """
        if self.field is None:
            raise ValueError(
                "index carries no in-memory field (reloaded from disk); "
                "feed it records directly with update_cells()")
        dirty = self.field.apply_updates(vertex_ids, values)
        if len(dirty):
            self.update_cells(dirty, self.field.cell_records()[dirty],
                              crash_point=crash_point)
        return dirty

    def update_cells(self, cell_ids, records,
                     crash_point: str | None = None) -> None:
        """Replace cell records in place, WAL-first when a log is attached.

        Protocol: (1) append the batch to the WAL and fsync — the
        update is now acknowledged; (2) rewrite the data pages and
        migrate index structures, with the I/O charged to
        :attr:`maint_stats`; (3) drop derived statistics so planners
        see the new intervals.  A crash anywhere after (1) is
        recovered by replay on the next load.  ``crash_point`` (tests
        only) aborts at a named step of :data:`UPDATE_CRASH_POINTS`.
        """
        if crash_point is not None and crash_point not in \
                UPDATE_CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {crash_point!r}; expected one of "
                f"{UPDATE_CRASH_POINTS}")
        cell_ids = np.asarray(cell_ids, dtype=np.int64).ravel()
        records = np.asarray(records, dtype=self.store.dtype).ravel()
        if len(cell_ids) != len(records):
            raise ValueError(
                f"{len(cell_ids)} cell ids vs {len(records)} records")
        if len(cell_ids) == 0:
            return
        # Validate before logging: a bad id must fail fast, not poison
        # the WAL and fail again on every replay.
        if cell_ids.min() < 0 or cell_ids.max() >= len(self.store):
            raise IndexError(
                f"cell ids must lie in [0, {len(self.store)}); got "
                f"[{cell_ids.min()}, {cell_ids.max()}]")
        if crash_point == "pre-wal":
            raise SimulatedCrash("pre-wal")
        if self.wal is not None:
            self.wal.append(
                cell_ids, records,
                crash_point=(crash_point
                             if crash_point in WAL_CRASH_POINTS else None))
        if crash_point == "wal-appended":
            raise SimulatedCrash("wal-appended")
        self._apply_update_batch(cell_ids, records)

    def _apply_update_batch(self, cell_ids: np.ndarray,
                            records: np.ndarray) -> None:
        """Apply an already-durable batch (also the WAL replay path)."""
        with self._maintenance():
            self._apply_cell_updates(cell_ids, records)
        self._updated = True
        self._stat_cache.clear()
        if REGISTRY.enabled:
            _UPDATES.inc(len(cell_ids), method=self.name)

    def _apply_cell_updates(self, cell_ids: np.ndarray,
                            records: np.ndarray) -> None:
        """Method-specific page rewrite + index maintenance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support live updates")

    def checkpoint(self, directory: str | Path) -> None:
        """Persist the index and truncate the WAL (see ``save_index``)."""
        from .persist import save_index
        save_index(self, directory)

    def statistics(self, bins: int = 64):
        """Interval statistics that stay fresh under updates.

        Built from the live field while the index is pristine; after
        the first update the ground truth is the record store, so the
        histogram is recomputed from a metadata scan whose counters
        are rolled back (statistics are planner metadata, not query
        work).  Cached per bin count; invalidated by every update.
        """
        cached = self._stat_cache.get(bins)
        if cached is not None:
            return cached
        from .statistics import FieldStatistics
        if self.field is not None and not self._updated:
            result = FieldStatistics.from_field(self.field, bins=bins)
        else:
            before = self.stats.snapshot()
            vmins, vmaxs = [], []
            for page in self.store.scan():
                vmins.append(page["vmin"].astype(np.float64))
                vmaxs.append(page["vmax"].astype(np.float64))
            self.stats.restore(before)
            self.clear_caches()
            result = FieldStatistics.from_intervals(
                np.concatenate(vmins), np.concatenate(vmaxs), bins=bins)
        self._stat_cache[bins] = result
        return result

    def aggregate(self, kind: str, lo: float, hi: float, *,
                  tolerance: float | None = None, mode: str = "exact"):
        """Exact COUNT/SUM/AVG/area over a value interval.

        The generic path filters candidates like a Q2 query and reduces
        them in one vectorized pass.  Model-accelerated modes need the
        per-subfield boundaries of the grouped index
        (:meth:`repro.core.grouped.GroupedIntervalIndex.aggregate`).
        """
        if mode != "exact":
            raise ValueError(
                f"{type(self).__name__} has no aggregate models; only "
                f"mode='exact' is supported (got {mode!r}). Use the "
                f"grouped access method for model/hybrid aggregates.")
        from .aggregate import exact_aggregate
        return exact_aggregate(self, kind, lo, hi)

    # -- introspection ------------------------------------------------------

    @property
    def data_pages(self) -> int:
        """Pages occupied by the cell records."""
        return self.store.num_pages

    @property
    def index_pages(self) -> int:
        """Pages occupied by index structures (0 for a plain scan)."""
        return 0

    def describe(self) -> dict:
        """Build-time summary used by reports and tests."""
        return {
            "method": self.name,
            "cells": len(self.store),
            "data_pages": self.data_pages,
            "index_pages": self.index_pages,
        }

    # -- to implement ---------------------------------------------------------

    @abc.abstractmethod
    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        """Records of every cell whose value interval intersects [lo, hi]."""

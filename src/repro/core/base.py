"""Common machinery of the three access methods.

Every method stores the field's cell records in a paged
:class:`~repro.storage.records.RecordStore` and answers a value query in
the paper's two steps: *filter* (produce candidate cell records whose
interval intersects the query) and *estimate* (compute answer regions from
the candidates).  Subclasses only implement the filtering step; storage,
I/O accounting and estimation are shared, which guarantees the comparison
between methods is apples-to-apples.
"""

from __future__ import annotations

import abc
from typing import Literal

import numpy as np

from ..field.base import Field
from ..field.extraction import extract_regions, total_area
from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER
from ..storage import DiskManager, IOStats, PAGE_SIZE, RecordStore
from .query import QueryResult, ValueQuery

EstimateMode = Literal["none", "area", "regions"]

_QUERIES = REGISTRY.counter(
    "repro_queries_total",
    "Value queries executed, per access method.")
_QUERY_PAGES = REGISTRY.histogram(
    "repro_query_page_reads",
    "Accounted page reads per value query, per access method.")
_QUERY_CANDIDATES = REGISTRY.histogram(
    "repro_query_candidates",
    "Candidate cells produced by the filtering step, per access method.")


class ValueIndex(abc.ABC):
    """Base class for field-value access methods.

    Parameters
    ----------
    field:
        The continuous field to index.  Its cell records are copied into
        paged storage at construction; queries run purely from pages.
    cache_pages:
        Buffer-pool capacity for the data file (0 = every access hits the
        simulated disk, the paper's cold setting).
    stats:
        Optional shared I/O counter (a private one is created otherwise).
    page_size:
        Page size of the simulated store (default 4 KiB, the paper's).
    """

    #: Human-readable method name, as used in the paper's plots.
    name: str = "method"

    def __init__(self, field: Field, cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE) -> None:
        self.field = field
        self.field_type = type(field)
        self.stats = stats if stats is not None else IOStats()
        #: Span recorder for the query lifecycle; the default no-op
        #: tracer is free — install a real one with ``Tracer.attach``.
        self.tracer = NULL_TRACER
        self.page_size = page_size
        self.data_disk = DiskManager(stats=self.stats, name="data",
                                     page_size=page_size)
        self.store = RecordStore(self.data_disk, field.record_dtype,
                                 cache_pages=cache_pages)

    # -- query pipeline ----------------------------------------------------

    def query(self, query: ValueQuery,
              estimate: EstimateMode = "area") -> QueryResult:
        """Run one field value query and return its result.

        ``estimate`` selects the estimation step output: ``"none"`` stops
        after filtering (candidates only), ``"area"`` computes the total
        answer area with the vectorized closed form, ``"regions"``
        additionally materializes exact answer polygons.

        With a real tracer installed (see
        :meth:`repro.obs.trace.Tracer.attach`), the run records a
        ``query`` span whose children cover the lifecycle phases
        (``plan``/``filter``/``fetch`` from the method's filtering step,
        ``estimate`` from the estimation step).
        """
        tracer = self.tracer
        before = self.stats.snapshot()
        if tracer.enabled:
            with tracer.span("query", {"method": self.name,
                                       "lo": query.lo,
                                       "hi": query.hi}) as span:
                candidates = self._candidates(query.lo, query.hi)
                with tracer.span("estimate", {"mode": estimate}):
                    result = self._finish(query, candidates, estimate)
                span.attrs["candidates"] = result.candidate_count
        else:
            candidates = self._candidates(query.lo, query.hi)
            result = self._finish(query, candidates, estimate)
        result.io = self.stats.diff(before)
        if REGISTRY.enabled:
            _QUERIES.inc(1, method=self.name)
            _QUERY_PAGES.observe(result.io.page_reads, method=self.name)
            _QUERY_CANDIDATES.observe(result.candidate_count,
                                      method=self.name)
        return result

    def _finish(self, query: ValueQuery, candidates: np.ndarray,
                estimate: EstimateMode) -> QueryResult:
        """Estimation step: turn filtered candidates into a result.

        Shared by :meth:`query` and the batch engine, which produces the
        candidate set differently (one fetch per group of overlapping
        queries) but must estimate identically.
        """
        result = QueryResult(query=query,
                             candidate_count=int(len(candidates)))
        if estimate == "area":
            result.area = self.field_type.estimate_area(
                candidates, query.lo, query.hi)
        elif estimate == "regions":
            regions = extract_regions(self.field_type, candidates,
                                      query.lo, query.hi)
            result.regions = regions
            result.area = total_area(regions)
        elif estimate != "none":
            raise ValueError(f"unknown estimate mode: {estimate!r}")
        return result

    def clear_caches(self) -> None:
        """Drop caches and forget disk positions (cold-query setting)."""
        self.store.pool.clear()
        self.data_disk.reset_head()

    # -- introspection ------------------------------------------------------

    @property
    def data_pages(self) -> int:
        """Pages occupied by the cell records."""
        return self.store.num_pages

    @property
    def index_pages(self) -> int:
        """Pages occupied by index structures (0 for a plain scan)."""
        return 0

    def describe(self) -> dict:
        """Build-time summary used by reports and tests."""
        return {
            "method": self.name,
            "cells": len(self.store),
            "data_pages": self.data_pages,
            "index_pages": self.index_pages,
        }

    # -- to implement ---------------------------------------------------------

    @abc.abstractmethod
    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        """Records of every cell whose value interval intersects [lo, hi]."""

"""Shared engine of the grouped (subfield-based) access methods.

I-Hilbert and the Interval-Quadtree baseline differ only in *how* they
decide the clustering order and the group boundaries; everything else —
the physically clustered cell file, the 1-D R*-tree over subfield
intervals, the two-step query — is identical and lives here.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..geometry import Rect
from ..rstar import RStarTree
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, ValueIndex
from .subfield import Subfield


class GroupedIntervalIndex(ValueIndex):
    """Value index over clustered cell groups (subfields).

    Parameters
    ----------
    field:
        Field to index.
    order:
        Permutation of cell indices: the physical storage order of the
        cell records (e.g. ascending Hilbert value of cell centers).
    groups:
        Inclusive ``(start, end)`` ranges over ``order`` — one subfield
        each.  Ranges must tile ``[0, num_cells)`` without gaps.
    """

    name = "Grouped"

    def __init__(self, field: Field, order: np.ndarray,
                 groups: list[tuple[int, int]], cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list") -> None:
        super().__init__(field, cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend)
        order = np.asarray(order, dtype=np.int64)
        records = field.cell_records()
        if len(order) != len(records):
            raise ValueError(
                f"permutation of length {len(order)} does not cover "
                f"{len(records)} cells")
        self._validate_groups(groups, len(records))
        self.order = order
        self.store.extend(records[order])

        vmins = records["vmin"][order].astype(np.float64)
        vmaxs = records["vmax"][order].astype(np.float64)
        self.subfields: list[Subfield] = []
        rects: list[Rect] = []
        for sf_id, (start, end) in enumerate(groups):
            lo = float(vmins[start:end + 1].min())
            hi = float(vmaxs[start:end + 1].max())
            self.subfields.append(Subfield(sf_id, lo, hi, start, end))
            rects.append(Rect.from_interval(lo, hi))

        self.index_disk = self._make_disk("sf-tree")
        self.tree = RStarTree(dim=1, disk=self.index_disk,
                              cache_pages=cache_pages)
        self.tree.bulk_load(rects, range(len(rects)))
        self.tree.flush()

    # -- reporting ----------------------------------------------------------

    @property
    def index_pages(self) -> int:
        return self.index_disk.num_pages

    @property
    def num_subfields(self) -> int:
        """Number of subfields the field was divided into."""
        return len(self.subfields)

    def describe(self) -> dict:
        info = super().describe()
        sizes = [sf.num_cells for sf in self.subfields]
        extents = [sf.hi - sf.lo for sf in self.subfields]
        info.update({
            "subfields": len(self.subfields),
            "cells_per_subfield": (sum(sizes) / len(sizes)
                                   if sizes else 0.0),
            "mean_interval_extent": (sum(extents) / len(extents)
                                     if extents else 0.0),
        })
        return info

    def clear_caches(self) -> None:
        super().clear_caches()
        self.tree.pool.clear()
        self.index_disk.reset_head()

    # -- dynamic maintenance ---------------------------------------------------

    def update_cell(self, cell_id: int, new_record) -> None:
        """Replace one cell's record (e.g. after a new measurement).

        The record is rewritten in place in the clustered file; the
        owning subfield's interval is recomputed exactly from its member
        cells, and when it changed, the subfield's entry migrates in the
        1-D R*-tree (delete + insert) — the index stays exact under
        updates.
        """
        rid = self._rid_of_cell(cell_id)
        self.store.update(rid, new_record)
        sf = self._subfield_of_rid(rid)
        block = self.store.read_range(sf.ptr_start, sf.ptr_end)
        new_lo = float(block["vmin"].astype(np.float64).min())
        new_hi = float(block["vmax"].astype(np.float64).max())
        if new_lo == sf.lo and new_hi == sf.hi:
            return
        self.tree.delete(Rect.from_interval(sf.lo, sf.hi), sf.sf_id)
        self.tree.insert(Rect.from_interval(new_lo, new_hi), sf.sf_id)
        self.tree.flush()
        self.subfields[sf.sf_id] = Subfield(
            sf.sf_id, new_lo, new_hi, sf.ptr_start, sf.ptr_end)

    def _rid_of_cell(self, cell_id: int) -> int:
        if not 0 <= cell_id < len(self.order):
            raise IndexError(f"cell id {cell_id} out of range")
        if getattr(self, "_inverse_order", None) is None:
            inverse = np.empty(len(self.order), dtype=np.int64)
            inverse[self.order] = np.arange(len(self.order))
            self._inverse_order = inverse
        return int(self._inverse_order[cell_id])

    def _subfield_of_rid(self, rid: int) -> Subfield:
        lo, hi = 0, len(self.subfields) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.subfields[mid].ptr_end < rid:
                lo = mid + 1
            else:
                hi = mid
        return self.subfields[lo]

    # -- the two-step query (paper §3.2) --------------------------------------

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        tracer = self.tracer
        # Step 1 (filtering): subfields whose interval intersects the query.
        with tracer.span("filter") as span:
            sf_ids = self.tree.search(Rect.from_interval(lo, hi))
            if span.enabled:
                span.attrs["subfields"] = len(sf_ids)
        if len(sf_ids) == 0:
            return np.empty(0, dtype=self.store.dtype)
        # Step 2 (estimation input): fetch the clustered cell ranges.
        # Selected subfields that sit on overlapping or adjacent pages are
        # coalesced into one sequential burst, so each page is read once —
        # the access pattern the (ptr_start, ptr_end) layout is built for.
        per_page = self.store.records_per_page
        page_ranges = sorted(
            (self.subfields[s].ptr_start // per_page,
             self.subfields[s].ptr_end // per_page)
            for s in sf_ids)
        runs: list[list[int]] = []
        for first, last in page_ranges:
            if runs and first <= runs[-1][1] + 1:
                runs[-1][1] = max(runs[-1][1], last)
            else:
                runs.append([first, last])
        with tracer.span("fetch") as span:
            chunks = []
            for first, last in runs:
                for page_no in range(first, last + 1):
                    block = self._read_data_page(page_no)
                    if block is None:
                        continue
                    mask = ((block["vmin"].astype(np.float64) <= hi)
                            & (block["vmax"].astype(np.float64) >= lo))
                    if mask.any():
                        chunks.append(block[mask])
            if span.enabled:
                span.attrs["runs"] = len(runs)
        if not chunks:
            return np.empty(0, dtype=self.store.dtype)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _validate_groups(groups: list[tuple[int, int]], n: int) -> None:
        if not groups and n:
            raise ValueError("no groups for a non-empty field")
        expected = 0
        for start, end in groups:
            if start != expected or end < start:
                raise ValueError(
                    f"groups must tile [0, {n}) contiguously; got "
                    f"({start}, {end}) where {expected} was expected")
            expected = end + 1
        if expected != n:
            raise ValueError(
                f"groups cover [0, {expected}) but the field has {n} cells")

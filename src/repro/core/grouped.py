"""Shared engine of the grouped (subfield-based) access methods.

I-Hilbert and the Interval-Quadtree baseline differ only in *how* they
decide the clustering order and the group boundaries; everything else —
the physically clustered cell file, the 1-D R*-tree over subfield
intervals, the two-step query — is identical and lives here.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..geometry import Rect
from ..obs.metrics import REGISTRY
from ..rstar import RStarTree
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, Engine, ValueIndex
from .cost import CostBasedGrouping, GroupingPolicy, group_cells
from .subfield import Subfield

_STALENESS = REGISTRY.gauge(
    "repro_subfield_staleness",
    "Worst per-subfield cost drift (cost_now/cost_built - 1) since the "
    "last build or compaction, per access method.")
_COMPACTIONS = REGISTRY.counter(
    "repro_compactions_total",
    "compact() passes that re-clustered at least one stale run, per "
    "access method.")


class GroupedIntervalIndex(ValueIndex):
    """Value index over clustered cell groups (subfields).

    Parameters
    ----------
    field:
        Field to index.
    order:
        Permutation of cell indices: the physical storage order of the
        cell records (e.g. ascending Hilbert value of cell centers).
    groups:
        Inclusive ``(start, end)`` ranges over ``order`` — one subfield
        each.  Ranges must tile ``[0, num_cells)`` without gaps.
    grouping:
        The :class:`~repro.core.cost.GroupingPolicy` that produced
        ``groups`` (when there was one).  Supplies the cost-function
        parameters for staleness tracking and is re-used by
        :meth:`compact` to re-cluster stale runs.
    """

    name = "Grouped"

    def __init__(self, field: Field, order: np.ndarray,
                 groups: list[tuple[int, int]], cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 grouping: GroupingPolicy | None = None,
                 engine: Engine = "vectorized",
                 bulk: bool = False) -> None:
        super().__init__(field, cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend, engine=engine)
        order = np.asarray(order, dtype=np.int64)
        records = field.cell_records()
        if len(order) != len(records):
            raise ValueError(
                f"permutation of length {len(order)} does not cover "
                f"{len(records)} cells")
        self._validate_groups(groups, len(records))
        self.order = order
        self.grouping = grouping
        if bulk:
            # Same page ids and page bytes as extend(); the bulk path
            # just writes straight from array slices.
            self.store.bulk_extend(records[order])
        else:
            self.store.extend(records[order])

        vmins = records["vmin"][order].astype(np.float64)
        vmaxs = records["vmax"][order].astype(np.float64)
        unit, _ = self._cost_params()
        sizes = vmaxs - vmins + unit
        self.subfields: list[Subfield] = []
        self._sf_si: list[float] = []
        for sf_id, (start, end) in enumerate(groups):
            lo = float(vmins[start:end + 1].min())
            hi = float(vmaxs[start:end + 1].max())
            self.subfields.append(Subfield(sf_id, lo, hi, start, end))
            self._sf_si.append(float(sizes[start:end + 1].sum()))
        self._built_costs: list[float] = [
            self._sf_cost(sf, si)
            for sf, si in zip(self.subfields, self._sf_si)]
        #: Learned aggregate models (core.aggregate); fitted lazily on
        #: the first aggregate() call or loaded from the manifest.
        self.aggregate_models = None

        self.index_disk = self._make_disk("sf-tree")
        self.tree = RStarTree(dim=1, disk=self.index_disk,
                              cache_pages=cache_pages)
        self.tree.bulk_load_arrays(
            np.array([sf.lo for sf in self.subfields], dtype=np.float64),
            np.array([sf.hi for sf in self.subfields], dtype=np.float64),
            np.arange(len(self.subfields), dtype=np.int64))
        self.tree.flush()

    # -- reporting ----------------------------------------------------------

    @property
    def index_pages(self) -> int:
        return self.index_disk.num_pages

    @property
    def num_subfields(self) -> int:
        """Number of subfields the field was divided into."""
        return len(self.subfields)

    def describe(self) -> dict:
        info = super().describe()
        sizes = [sf.num_cells for sf in self.subfields]
        extents = [sf.hi - sf.lo for sf in self.subfields]
        info.update({
            "subfields": len(self.subfields),
            "cells_per_subfield": (sum(sizes) / len(sizes)
                                   if sizes else 0.0),
            "mean_interval_extent": (sum(extents) / len(extents)
                                     if extents else 0.0),
        })
        return info

    def clear_caches(self) -> None:
        super().clear_caches()
        self.tree.pool.clear()
        self.index_disk.reset_head()

    # -- dynamic maintenance ---------------------------------------------------

    def update_cell(self, cell_id: int, new_record) -> None:
        """Replace one cell's record (e.g. after a new measurement).

        Single-cell convenience over :meth:`update_cells`: the record
        is rewritten in place in the clustered file, the owning
        subfield's interval is recomputed exactly from its member
        cells, and when it changed, the subfield's entry migrates in
        the 1-D R*-tree (delete + insert) — the index stays exact
        under updates.  Maintenance I/O lands in ``maint_stats`` and,
        when a WAL is attached, the change is durable before the page
        write.
        """
        self.update_cells(
            np.asarray([cell_id], dtype=np.int64),
            np.asarray(new_record, dtype=self.store.dtype).reshape(1))

    def _apply_cell_updates(self, cell_ids: np.ndarray,
                            records: np.ndarray) -> None:
        self._ensure_cost_baseline()
        touched: set[int] = set()
        for cell_id, record in zip(cell_ids, records):
            rid = self._rid_of_cell(int(cell_id))
            self.store.update(rid, record)
            touched.add(self._subfield_of_rid(rid).sf_id)
        # One interval recomputation per touched subfield, however many
        # of its members the batch rewrote.
        unit, _ = self._cost_params()
        tree_dirty = False
        for sf_id in sorted(touched):
            sf = self.subfields[sf_id]
            block = self.store.read_range(sf.ptr_start, sf.ptr_end)
            vmins = block["vmin"].astype(np.float64)
            vmaxs = block["vmax"].astype(np.float64)
            new_lo = float(vmins.min())
            new_hi = float(vmaxs.max())
            self._sf_si[sf_id] = float((vmaxs - vmins + unit).sum())
            # Values can move without changing the subfield interval, so
            # the aggregate models refit before the interval check —
            # reusing the block already in hand (no extra reads).
            if self.aggregate_models is not None:
                self.aggregate_models.refit(self.field_type, sf_id, block)
            if new_lo == sf.lo and new_hi == sf.hi:
                continue
            self.tree.delete(Rect.from_interval(sf.lo, sf.hi), sf_id)
            self.tree.insert(Rect.from_interval(new_lo, new_hi), sf_id)
            self.subfields[sf_id] = Subfield(
                sf_id, new_lo, new_hi, sf.ptr_start, sf.ptr_end)
            tree_dirty = True
        if tree_dirty:
            self.tree.flush()
        if REGISTRY.enabled:
            _STALENESS.set(self.staleness()["max_drift"], method=self.name)

    # -- subfield quality (paper §3.1.2 cost drift) ----------------------------

    def _cost_params(self) -> tuple[float, float]:
        """(unit, avg_query) of the §3.1.2 cost convention in force."""
        grouping = getattr(self, "grouping", None)
        unit = float(getattr(grouping, "unit", 1.0))
        avg_query = float(getattr(grouping, "avg_query", 0.0))
        if unit == 0.0 and avg_query == 0.0:
            unit = 1.0
        return unit, avg_query

    def _sf_cost(self, sf: Subfield, si: float) -> float:
        """Cost ``C = P / SI`` of one subfield (paper §3.1.2)."""
        unit, avg_query = self._cost_params()
        return (sf.hi - sf.lo + unit + avg_query) / max(si, 1e-12)

    def _ensure_cost_baseline(self) -> None:
        """Reconstruct SI sums and baseline costs after a reload.

        A freshly built index records them during grouping; a reloaded
        one derives SI from a single maintenance-accounted metadata
        sweep.  The drift baseline survives reloads via the manifest;
        when that record is missing (older snapshots) the *current*
        state becomes the baseline.
        """
        if getattr(self, "_sf_si", None) is not None:
            return
        unit, _ = self._cost_params()
        with self._maintenance():
            sizes = np.concatenate([
                page["vmax"].astype(np.float64)
                - page["vmin"].astype(np.float64) + unit
                for page in self.store.scan()])
        self._sf_si = [float(sizes[sf.ptr_start:sf.ptr_end + 1].sum())
                       for sf in self.subfields]
        if getattr(self, "_built_costs", None) is None:
            self._built_costs = [
                self._sf_cost(sf, si)
                for sf, si in zip(self.subfields, self._sf_si)]

    def subfield_drifts(self) -> np.ndarray:
        """Per-subfield relative cost drift since build/compaction.

        ``drift = cost_now / cost_built − 1``: positive when updates
        widened a subfield's interval relative to the mass it carries
        (its access probability grew faster than its usefulness — the
        filter admits more false candidates), negative when they
        tightened it.
        """
        self._ensure_cost_baseline()
        drifts = np.empty(len(self.subfields), dtype=np.float64)
        for k, (sf, si, built) in enumerate(
                zip(self.subfields, self._sf_si, self._built_costs)):
            now = self._sf_cost(sf, si)
            drifts[k] = now / built - 1.0 if built > 0 else 0.0
        return drifts

    def staleness(self, threshold: float = 0.0) -> dict:
        """Summary of subfield quality drift (the ``repro.obs`` metric).

        A subfield counts as stale when its drift exceeds
        ``threshold`` (strictly positive drifts only — updates that
        tighten intervals improve the filter).
        """
        drifts = self.subfield_drifts()
        floor = max(threshold, 1e-12)
        return {
            "subfields": int(len(drifts)),
            "stale_subfields": int((drifts > floor).sum()),
            "max_drift": float(drifts.max()) if len(drifts) else 0.0,
            "mean_drift": float(drifts.mean()) if len(drifts) else 0.0,
        }

    def _compaction_policy(self) -> GroupingPolicy:
        if self.grouping is not None:
            return self.grouping
        unit, avg_query = self._cost_params()
        return CostBasedGrouping(unit=unit, avg_query=avg_query)

    def compact(self, stale_threshold: float = 0.0) -> dict:
        """Re-cluster stale runs of subfields; returns a summary dict.

        Value updates never move a cell spatially, so the physical
        (curve) order stays optimal — what goes stale is the *grouping*
        decided from the old intervals.  Compaction finds maximal runs
        of consecutive subfields whose cost drifted past
        ``stale_threshold``, re-reads each run once (sequentially),
        re-runs the §3.1.2 greedy grouping over it — splitting and
        merging as the new intervals dictate — and rebuilds the 1-D
        R*-tree over the resulting subfield list.  Untouched subfields
        keep their boundaries; record pages are never rewritten.  All
        I/O is maintenance-accounted.
        """
        self._ensure_cost_baseline()
        drifts = self.subfield_drifts()
        stale = drifts > max(stale_threshold, 1e-12)
        summary = {"subfields_before": len(self.subfields),
                   "subfields_after": len(self.subfields),
                   "stale_subfields": int(stale.sum()),
                   "stale_runs": 0, "reclustered_cells": 0}
        if not stale.any():
            return summary
        unit, _ = self._cost_params()
        policy = self._compaction_policy()
        with self._maintenance():
            spans: list[tuple[float, float, int, int, float]] = []
            i = 0
            while i < len(self.subfields):
                if not stale[i]:
                    sf = self.subfields[i]
                    spans.append((sf.lo, sf.hi, sf.ptr_start, sf.ptr_end,
                                  self._sf_si[i]))
                    i += 1
                    continue
                j = i
                while j < len(self.subfields) and stale[j]:
                    j += 1
                base = self.subfields[i].ptr_start
                block = self.store.read_range(base,
                                              self.subfields[j - 1].ptr_end)
                vmins = block["vmin"].astype(np.float64)
                vmaxs = block["vmax"].astype(np.float64)
                sizes = vmaxs - vmins + unit
                for start, end in group_cells(vmins, vmaxs, policy):
                    spans.append((float(vmins[start:end + 1].min()),
                                  float(vmaxs[start:end + 1].max()),
                                  base + start, base + end,
                                  float(sizes[start:end + 1].sum())))
                summary["stale_runs"] += 1
                summary["reclustered_cells"] += len(block)
                i = j
            self.subfields = [
                Subfield(sf_id, lo, hi, start, end)
                for sf_id, (lo, hi, start, end, _) in enumerate(spans)]
            self._sf_si = [si for *_, si in spans]
            self._built_costs = [
                self._sf_cost(sf, si)
                for sf, si in zip(self.subfields, self._sf_si)]
            injector = self.index_disk.fault_injector
            cache_pages = self.tree.pool.capacity
            self.index_disk = self._make_disk("sf-tree")
            self.index_disk.fault_injector = injector
            self.tree = RStarTree(dim=1, disk=self.index_disk,
                                  cache_pages=cache_pages)
            self.tree.bulk_load(
                [Rect.from_interval(sf.lo, sf.hi) for sf in self.subfields],
                range(len(self.subfields)))
            self.tree.flush()
        summary["subfields_after"] = len(self.subfields)
        # Compaction moved subfield boundaries — the natural refit point
        # for the aggregate models (ROADMAP item 3 / PolyFit).
        if self.aggregate_models is not None:
            self.fit_aggregate_models(degree=self.aggregate_models.degree)
        if REGISTRY.enabled:
            _COMPACTIONS.inc(1, method=self.name)
            _STALENESS.set(self.staleness()["max_drift"], method=self.name)
        return summary

    # -- approximate aggregates (ROADMAP item 3) -------------------------------

    def fit_aggregate_models(self, degree: int | None = None):
        """(Re)fit per-subfield polynomial aggregate models.

        One sequential maintenance pass over the store; see
        ``repro.core.aggregate`` for the model form and guarantees.
        """
        from .aggregate import DEFAULT_DEGREE, fit_aggregate_models
        self.aggregate_models = fit_aggregate_models(
            self, degree=DEFAULT_DEGREE if degree is None else degree)
        return self.aggregate_models

    def aggregate(self, kind: str, lo: float, hi: float, *,
                  tolerance: float | None = None, mode: str = "hybrid"):
        """COUNT/SUM/AVG/area over ``[lo, hi]`` with an error guarantee.

        Models are fitted lazily on first use; ``mode`` and
        ``tolerance`` pick the point on the accuracy-vs-speed frontier
        (see :func:`repro.core.aggregate.evaluate_aggregate`).
        """
        from .aggregate import evaluate_aggregate
        if self.aggregate_models is None or \
                self.aggregate_models.num_subfields != len(self.subfields):
            self.fit_aggregate_models(
                degree=None if self.aggregate_models is None
                else self.aggregate_models.degree)
        return evaluate_aggregate(self, self.aggregate_models, kind, lo, hi,
                                  tolerance=tolerance, mode=mode)

    def _rid_of_cell(self, cell_id: int) -> int:
        if not 0 <= cell_id < len(self.order):
            raise IndexError(f"cell id {cell_id} out of range")
        if getattr(self, "_inverse_order", None) is None:
            inverse = np.empty(len(self.order), dtype=np.int64)
            inverse[self.order] = np.arange(len(self.order))
            self._inverse_order = inverse
        return int(self._inverse_order[cell_id])

    def _subfield_of_rid(self, rid: int) -> Subfield:
        lo, hi = 0, len(self.subfields) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.subfields[mid].ptr_end < rid:
                lo = mid + 1
            else:
                hi = mid
        return self.subfields[lo]

    # -- the two-step query (paper §3.2) --------------------------------------

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        tracer = self.tracer
        # Step 1 (filtering): subfields whose interval intersects the query.
        with tracer.span("filter") as span:
            sf_ids = self.tree.search(Rect.from_interval(lo, hi))
            if span.enabled:
                span.attrs["subfields"] = len(sf_ids)
        if len(sf_ids) == 0:
            return np.empty(0, dtype=self.store.dtype)
        # Step 2 (estimation input): fetch the clustered cell ranges.
        # Selected subfields that sit on overlapping or adjacent pages are
        # coalesced into one sequential burst, so each page is read once —
        # the access pattern the (ptr_start, ptr_end) layout is built for.
        per_page = self.store.records_per_page
        page_ranges = sorted(
            (self.subfields[s].ptr_start // per_page,
             self.subfields[s].ptr_end // per_page)
            for s in sf_ids)
        runs: list[list[int]] = []
        for first, last in page_ranges:
            if runs and first <= runs[-1][1] + 1:
                runs[-1][1] = max(runs[-1][1], last)
            else:
                runs.append([first, last])
        with tracer.span("fetch") as span:
            chunks = []
            if self.engine == "vectorized":
                # One batched fetch + one array-wide interval mask per
                # coalesced run — identical reads and output order to
                # the per-page loop below.
                for first, last in runs:
                    block = self._read_data_run(first, last)
                    if block is None:
                        continue
                    mask = ((block["vmin"].astype(np.float64) <= hi)
                            & (block["vmax"].astype(np.float64) >= lo))
                    if mask.any():
                        chunks.append(block[mask])
            else:
                for first, last in runs:
                    for page_no in range(first, last + 1):
                        block = self._read_data_page(page_no)
                        if block is None:
                            continue
                        mask = ((block["vmin"].astype(np.float64) <= hi)
                                & (block["vmax"].astype(np.float64) >= lo))
                        if mask.any():
                            chunks.append(block[mask])
            if span.enabled:
                span.attrs["runs"] = len(runs)
        if not chunks:
            return np.empty(0, dtype=self.store.dtype)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _validate_groups(groups: list[tuple[int, int]], n: int) -> None:
        if not groups and n:
            raise ValueError("no groups for a non-empty field")
        expected = 0
        for start, end in groups:
            if start != expected or end < start:
                raise ValueError(
                    f"groups must tile [0, {n}) contiguously; got "
                    f"({start}, {end}) where {expected} was expected")
            expected = end + 1
        if expected != n:
            raise ValueError(
                f"groups cover [0, {expected}) but the field has {n} cells")

"""Interval Quadtree baseline (paper ref [15], discussed in §3.1.1).

The predecessor of I-Hilbert: the field space is divided quadtree-style
until each block's value interval size drops below a fixed threshold; the
resulting blocks play the role of subfields.  The paper criticizes the
approach for its arbitrary threshold and its rigidly quadratic blocks —
this implementation exists to quantify that comparison.

Blocks are clustered in depth-first quadrant order and their intervals
indexed in the same 1-D R*-tree engine as I-Hilbert, so any performance
difference is attributable to the division strategy alone.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend
from .cost import ThresholdGrouping
from .grouped import GroupedIntervalIndex

#: Hard stop for quadtree recursion depth.
MAX_DEPTH = 16


class IntervalQuadtreeIndex(GroupedIntervalIndex):
    """Fixed-threshold quadtree division of the field space.

    Parameters
    ----------
    field:
        Field to index.
    threshold:
        Maximum allowed interval size (``max − min + unit``) of a block.
        When None, defaults to 25% of the field's value extent — but the
        point of the paper is that no principled default exists.
    unit:
        Interval-size additive constant (the paper's +1).
    """

    name = "I-Quadtree"

    def __init__(self, field: Field, threshold: float | None = None,
                 unit: float = 1.0, cache_pages: int = 0,
                 stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list") -> None:
        records = field.cell_records()
        vmins = records["vmin"].astype(np.float64)
        vmaxs = records["vmax"].astype(np.float64)
        if threshold is None:
            extent = float(vmaxs.max() - vmins.min())
            threshold = 0.25 * extent + unit
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.unit = unit

        centroids = field.cell_centroids()
        xmin, ymin, xmax, ymax = field.bounds
        side = max(xmax - xmin, ymax - ymin, 1e-12)
        order: list[int] = []
        groups: list[tuple[int, int]] = []

        def divide(cell_ids: np.ndarray, x0: float, y0: float,
                   size: float, depth: int) -> None:
            lo = vmins[cell_ids].min()
            hi = vmaxs[cell_ids].max()
            small = hi - lo + unit <= threshold
            if small or len(cell_ids) == 1 or depth >= MAX_DEPTH:
                start = len(order)
                order.extend(int(c) for c in cell_ids)
                groups.append((start, len(order) - 1))
                return
            half = size / 2.0
            cx = centroids[cell_ids, 0]
            cy = centroids[cell_ids, 1]
            west = cx < x0 + half
            south = cy < y0 + half
            quadrants = [
                (west & south, x0, y0),
                (~west & south, x0 + half, y0),
                (west & ~south, x0, y0 + half),
                (~west & ~south, x0 + half, y0 + half),
            ]
            for mask, qx, qy in quadrants:
                if mask.any():
                    divide(cell_ids[mask], qx, qy, half, depth + 1)

        divide(np.arange(field.num_cells), xmin, ymin, side, 0)
        super().__init__(field, np.asarray(order), groups,
                         cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend,
                         grouping=ThresholdGrouping(threshold, unit=unit))

    def describe(self) -> dict:
        info = super().describe()
        info["threshold"] = self.threshold
        return info

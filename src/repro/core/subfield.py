"""Subfields: contiguous runs of linearized cells with similar values.

A subfield (paper §3) is described by its value interval and by the
``(ptr_start, ptr_end)`` pair of record ids delimiting its cells in the
clustered cell file — exactly the leaf-entry layout of paper Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Interval


@dataclass(frozen=True, slots=True)
class Subfield:
    """One subfield of a grouped value index."""

    sf_id: int
    lo: float
    hi: float
    ptr_start: int   # first cell rid (inclusive)
    ptr_end: int     # last cell rid (inclusive)

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty subfield interval [{self.lo}, {self.hi}]")
        if self.ptr_start > self.ptr_end:
            raise ValueError(
                f"empty cell range [{self.ptr_start}, {self.ptr_end}]")

    @property
    def num_cells(self) -> int:
        """Number of cells the subfield covers."""
        return self.ptr_end - self.ptr_start + 1

    @property
    def interval(self) -> Interval:
        """The subfield's value interval."""
        return Interval(self.lo, self.hi)

    def intersects(self, lo: float, hi: float) -> bool:
        """True when the subfield may contain values in ``[lo, hi]``."""
        return self.lo <= hi and lo <= self.hi

"""'I-Hilbert' — the paper's proposed access method (§3).

Cells are linearized by the Hilbert value of their center, greedily
grouped into subfields with the cost function of §3.1.2, physically
clustered in that order, and the (few) subfield intervals are indexed in
a 1-D R*-tree.  The curve and the grouping policy are pluggable to
support the paper-motivated ablations (Hilbert vs. Z-order vs. Gray code;
cost-based vs. fixed-threshold grouping).
"""

from __future__ import annotations

import math

import numpy as np

from ..curves import (
    CURVES,
    HilbertCurve2D,
    HilbertCurveND,
    SpaceFillingCurve,
)
from ..field.base import Field
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, Engine
from .cost import CostBasedGrouping, GroupingPolicy, group_cells
from .grouped import GroupedIntervalIndex


def centroid_grid_coords(centroids: np.ndarray, side: int,
                         bounds: tuple[float, ...]) -> np.ndarray:
    """Map centroid positions onto an integer ``side``-per-axis grid.

    ``bounds`` lists the domain mins then maxs (``(xmin, ymin, xmax,
    ymax)`` in 2-D, six values in 3-D), matching ``Field.bounds``.
    """
    centroids = np.asarray(centroids, dtype=np.float64)
    dim = centroids.shape[1]
    mins = np.asarray(bounds[:dim], dtype=np.float64)
    maxs = np.asarray(bounds[dim:], dtype=np.float64)
    span = np.maximum(maxs - mins, 1e-12)
    grid = ((centroids - mins) / span * side).astype(np.int64)
    return np.clip(grid, 0, side - 1)


def linearize(field: Field, curve: SpaceFillingCurve) -> np.ndarray:
    """Cell permutation in ascending curve value of cell centers."""
    centroids = field.cell_centroids()
    coords = centroid_grid_coords(centroids, curve.side, field.bounds)
    keys = curve.indices(coords)
    return np.argsort(keys, kind="stable")


def default_curve_order(field: Field, dim: int = 2) -> int:
    """Curve order giving roughly one grid site per cell."""
    side = max(2.0, field.num_cells ** (1.0 / dim))
    return max(1, math.ceil(math.log2(side)))


def make_curve(name: str, order: int, dim: int) -> SpaceFillingCurve:
    """Instantiate a named curve for the given dimensionality."""
    if name == "hilbert":
        return HilbertCurve2D(order) if dim == 2 \
            else HilbertCurveND(order, dim)
    try:
        curve_cls = CURVES[name]
    except KeyError:
        raise ValueError(
            f"unknown curve {name!r}; expected one of "
            f"{sorted(CURVES)}") from None
    return curve_cls(order, dim)


class IHilbertIndex(GroupedIntervalIndex):
    """The proposed subfield index over a space-filling-curve order.

    Parameters
    ----------
    field:
        Field to index.
    curve:
        Linearization curve; "hilbert" (default, the paper's choice),
        "zorder" or "gray", or a ready :class:`SpaceFillingCurve`.
    grouping:
        Subfield admission policy; defaults to the paper's cost function.
    """

    name = "I-Hilbert"

    def __init__(self, field: Field,
                 curve: str | SpaceFillingCurve = "hilbert",
                 grouping: GroupingPolicy | None = None,
                 cache_pages: int = 0, stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 engine: Engine = "vectorized",
                 bulk: bool = False) -> None:
        if isinstance(curve, str):
            dim = field.cell_centroids().shape[1]
            curve = make_curve(curve, default_curve_order(field, dim), dim)
        self.curve = curve
        if grouping is None:
            # The paper's cost model on values normalized to [0, 1]
            # (§3.1.2): interval size = extent + 1 and P = L + 0.5.
            # Expressed in raw value units that is unit = span and
            # avg_query = span / 2; see CostBasedGrouping's docstring.
            span = field.value_range.length
            grouping = CostBasedGrouping(
                unit=span if span > 0 else 1.0, avg_query=0.5 * span)
        order = linearize(field, curve)
        records = field.cell_records()
        groups = group_cells(records["vmin"][order].astype(np.float64),
                             records["vmax"][order].astype(np.float64),
                             grouping)
        super().__init__(field, order, groups, cache_pages=cache_pages,
                         stats=stats, page_size=page_size,
                         retry_policy=retry_policy,
                         disk_backend=disk_backend, grouping=grouping,
                         engine=engine, bulk=bulk)

    def describe(self) -> dict:
        info = super().describe()
        info["curve"] = self.curve.name
        info["grouping"] = type(self.grouping).__name__
        return info

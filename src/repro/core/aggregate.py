"""Approximate range aggregates from learned polynomial models.

A new query class the paper lacks (ROADMAP item 3): COUNT / SUM / AVG /
area-of-region over a value interval ``[lo, hi]``, answered in O(model
lookup) per subfield with a *guaranteed* error bound, following PolyFit's
learned piecewise-polynomial index for approximate range aggregates
(arXiv:2003.08031).

Every aggregate decomposes into two cumulative curves per subfield::

    count(lo, hi) = count_le(hi) - count_lt(lo)

where ``count_le(v)`` counts cells with ``vmin <= v`` (the cells that
have *entered* the band by ``v``) and ``count_lt(v)`` counts cells with
``vmax < v`` (the cells that have *left* it).  The same decomposition
holds for the midpoint-weighted sum curves and — including the flat-cell
atoms handled by :meth:`~repro.field.base.Field.band_area_curves` — for
the answer-region area.  Each of the six curves is fitted with one
low-degree polynomial per subfield over the subfield's value domain
(subfields are the natural pieces of the piecewise model: the grouping
pass already cut the value axis where the distribution changes).

The error bound is not a statistical residual but a sup-norm bracket:
the fit grid contains *every distinct endpoint value* of the subfield,
so each true curve is either monotone between adjacent grid points or a
step function whose breakpoints all lie on the grid.  Its value over
``(g_k, g_{k+1})`` is therefore bracketed by ``[min(y_k, y_{k+1}),
max(y_k, y_{k+1})]``, while the polynomial's exact extremes on the same
interval come from its endpoints and derivative roots.  The stored bound
is the max bracket gap over all intervals, inflated by a float-slack
term — so a model answer ``m`` guarantees ``|m - exact| <= bound``.

Query evaluation is vectorized over subfields: fully covered subfields
contribute their stored exact totals, point-span subfields need no model
at all, and only *boundary* subfields (the query edge cuts their value
domain) use the polynomials.  When the accumulated bound exceeds the
query's tolerance, the evaluator greedily moves the worst-bound boundary
subfields to the exact vectorized estimation path (reading only their
clustered cell ranges) until the remaining bound fits — ``tolerance=0``
degenerates to the fully exact path, byte-for-byte identical to
``mode="exact"``.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

#: Aggregate kinds and their component curves.
AGGREGATE_KINDS = ("count", "sum", "avg", "area")
#: Evaluation modes: pure model, model with exact fallback, pure exact.
AGGREGATE_MODES = ("model", "hybrid", "exact")
#: Default polynomial degree (PolyFit uses 1–3; 3 is the sweet spot for
#: the smooth quadratic band-area curves of linear interpolants).
DEFAULT_DEGREE = 3

#: Order of the six fitted curves in the coeffs/bounds arrays.
CURVE_NAMES = ("count_le", "count_lt", "sum_le", "sum_lt",
               "area_le", "area_lt")
#: (le, lt) curve columns per component.
_CURVE_COLS = {"count": (0, 1), "sum": (2, 3), "area": (4, 5)}
#: Stored exact totals column per component.
_TOTAL_COL = {"count": 0, "sum": 1, "area": 2}
#: Components each aggregate kind needs.
_COMPONENTS = {"count": ("count",), "sum": ("sum",), "area": ("area",),
               "avg": ("count", "sum")}

#: Relative + absolute slack covering float noise between the fitted
#: curves (cumulative sums) and the exact vectorized path's reductions.
_REL_SLACK = 1e-9
_ABS_SLACK = 1e-9


def _validate(kind: str, lo: float, hi: float, mode: str,
              tolerance: float | None) -> None:
    if kind not in AGGREGATE_KINDS:
        raise ValueError(
            f"unknown aggregate kind {kind!r}; expected one of "
            f"{AGGREGATE_KINDS}")
    if mode not in AGGREGATE_MODES:
        raise ValueError(
            f"unknown aggregate mode {mode!r}; expected one of "
            f"{AGGREGATE_MODES}")
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise ValueError(f"aggregate bounds must be finite: [{lo}, {hi}]")
    if lo > hi:
        raise ValueError(f"empty aggregate interval: lo={lo} > hi={hi}")
    if tolerance is not None and tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")


@dataclass
class AggregateResult:
    """One aggregate answer with its guarantee and cost accounting."""

    kind: str
    lo: float
    hi: float
    value: float
    #: Guaranteed ``|value - exact| <= bound``.  0.0 when the answer is
    #: exact; ``inf`` for an AVG whose count interval touches zero.
    bound: float
    mode: str
    tolerance: float | None
    #: Subfields answered from stored totals (fully covered).
    covered_subfields: int
    #: Boundary subfields answered by the polynomial models.
    model_subfields: int
    #: Boundary subfields answered by the exact vectorized path.
    exact_subfields: int
    page_reads: int

    def to_dict(self) -> dict:
        """JSON-safe summary (non-finite bounds become ``None``)."""
        return {
            "kind": self.kind,
            "lo": self.lo,
            "hi": self.hi,
            "value": self.value,
            "bound": self.bound if math.isfinite(self.bound) else None,
            "mode": self.mode,
            "tolerance": self.tolerance,
            "covered_subfields": self.covered_subfields,
            "model_subfields": self.model_subfields,
            "exact_subfields": self.exact_subfields,
            "page_reads": self.page_reads,
        }


# -- fitting ---------------------------------------------------------------


def _curve_table(field_type, block: np.ndarray,
                 grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(len(grid), 6)`` true curve values and the three exact totals."""
    vmins = block["vmin"].astype(np.float64)
    vmaxs = block["vmax"].astype(np.float64)
    weights = (vmins + vmaxs) * 0.5
    count_le = np.searchsorted(np.sort(vmins), grid, side="right")
    count_lt = np.searchsorted(np.sort(vmaxs), grid, side="left")
    # Prefix sums of midpoint weights in endpoint order give the sum
    # curves at the same breakpoints.
    pre_min = np.concatenate(
        [[0.0], np.cumsum(weights[np.argsort(vmins, kind="stable")])])
    pre_max = np.concatenate(
        [[0.0], np.cumsum(weights[np.argsort(vmaxs, kind="stable")])])
    area_le, area_lt, area_total = field_type.band_area_curves(block, grid)
    ys = np.column_stack([
        count_le.astype(np.float64), count_lt.astype(np.float64),
        pre_min[count_le], pre_max[count_lt],
        area_le, area_lt,
    ])
    totals = np.array([float(len(block)), float(weights.sum()),
                       float(area_total)])
    return ys, totals


def _residual_bounds(coeffs: np.ndarray, u: np.ndarray,
                     ys: np.ndarray) -> np.ndarray:
    """Sup-norm bracket bound per curve (see module docstring).

    ``coeffs`` is ``(6, degree + 1)`` highest-power-first, ``u`` the
    scaled grid in [0, 1], ``ys`` the ``(len(u), 6)`` true curve values.
    """
    npts = len(u)
    bounds = np.empty(6)
    for c in range(6):
        cs = coeffs[c]
        m = np.polyval(cs, u)
        y = ys[:, c]
        scale = max(1.0, float(np.abs(y).max()))
        if npts == 1:
            gap = abs(float(m[0] - y[0]))
        else:
            m_lo = np.minimum(m[:-1], m[1:])
            m_hi = np.maximum(m[:-1], m[1:])
            # Interior extremes of the polynomial on each grid interval:
            # endpoints plus real derivative roots.
            der = np.polyder(cs)
            if np.any(der):
                for root in np.atleast_1d(np.roots(der)):
                    if abs(root.imag) > 1e-12:
                        continue
                    uc = float(root.real)
                    if uc <= u[0] or uc >= u[-1]:
                        continue
                    k = min(max(int(np.searchsorted(u, uc, side="right"))
                                - 1, 0), npts - 2)
                    mc = float(np.polyval(cs, uc))
                    m_lo[k] = min(m_lo[k], mc)
                    m_hi[k] = max(m_hi[k], mc)
            y_lo = np.minimum(y[:-1], y[1:])
            y_hi = np.maximum(y[:-1], y[1:])
            gap = max(0.0, float(np.max(m_hi - y_lo)),
                      float(np.max(y_hi - m_lo)))
        bounds[c] = gap * (1.0 + _REL_SLACK) + _ABS_SLACK * scale
    return bounds


def _fit_subfield(field_type, block: np.ndarray, degree: int) -> tuple[
        tuple[float, float], np.ndarray, np.ndarray, np.ndarray]:
    """Fit the six curves of one subfield's cell block.

    Returns ``((dom_lo, dom_hi), totals, coeffs, bounds)`` with coeffs
    ``(6, degree + 1)`` highest-power-first over the scaled domain.
    """
    vmins = block["vmin"].astype(np.float64)
    vmaxs = block["vmax"].astype(np.float64)
    # The grid is every distinct endpoint: exactly the breakpoints of the
    # count/sum step curves and the knots of the piecewise-smooth area
    # curves, which is what makes the bracket bound a guarantee.
    grid = np.unique(np.concatenate([vmins, vmaxs]))
    dom_lo, dom_hi = float(grid[0]), float(grid[-1])
    ys, totals = _curve_table(field_type, block, grid)
    span = dom_hi - dom_lo
    u = (grid - dom_lo) / span if span > 0 else np.zeros_like(grid)
    deg = min(degree, max(len(grid) - 1, 0))
    # One least-squares solve fits all six curves (shared Vandermonde).
    vander = np.vander(u, deg + 1)
    sol, *_ = np.linalg.lstsq(vander, ys, rcond=None)
    if deg < degree:
        sol = np.vstack([np.zeros((degree - deg, 6)), sol])
    coeffs = np.ascontiguousarray(sol.T)
    bounds = _residual_bounds(coeffs, u, ys)
    return (dom_lo, dom_hi), totals, coeffs, bounds


@dataclass
class AggregateModelSet:
    """Per-subfield polynomial models of the six cumulative curves."""

    degree: int
    #: ``(n_subfields, 6, degree + 1)`` coefficients, highest power first,
    #: over the scaled domain ``u = (v - dom_lo) / (dom_hi - dom_lo)``.
    coeffs: np.ndarray
    #: ``(n_subfields, 6)`` guaranteed sup-norm residual per curve.
    bounds: np.ndarray
    #: ``(n_subfields, 3)`` exact totals: count, midpoint sum, area.
    totals: np.ndarray
    #: ``(n_subfields, 2)`` fitted value domain per subfield.
    dom: np.ndarray
    #: How SUM/AVG weigh a cell (recorded for persistence/UI).
    weight: str = "midpoint"

    @property
    def num_subfields(self) -> int:
        """Number of subfield rows the models cover."""
        return len(self.dom)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of all model arrays, in bytes."""
        return (self.coeffs.nbytes + self.bounds.nbytes
                + self.totals.nbytes + self.dom.nbytes)

    def refit(self, field_type, sf_id: int, block: np.ndarray) -> None:
        """Refit one subfield's models from its (already read) block."""
        dom, totals, coeffs, bounds = _fit_subfield(
            field_type, block, self.degree)
        self.dom[sf_id] = dom
        self.totals[sf_id] = totals
        self.coeffs[sf_id] = coeffs
        self.bounds[sf_id] = bounds

    def eval_rows(self, rows: np.ndarray, col: int,
                  value: float) -> np.ndarray:
        """Evaluate curve ``col`` of the given subfield rows at ``value``."""
        dom_lo = self.dom[rows, 0]
        span = self.dom[rows, 1] - dom_lo
        u = np.where(span > 0.0,
                     (value - dom_lo) / np.where(span > 0.0, span, 1.0),
                     0.0)
        cs = self.coeffs[rows, col, :]
        acc = np.zeros(len(rows))
        for k in range(cs.shape[1]):  # Horner over the shared degree
            acc = acc * u + cs[:, k]
        return acc

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Arrays for ``np.savez`` persistence (see core.persist)."""
        return {
            "coeffs": self.coeffs,
            "bounds": self.bounds,
            "totals": self.totals,
            "dom": self.dom,
        }

    @classmethod
    def from_arrays(cls, arrays, degree: int,
                    weight: str = "midpoint") -> "AggregateModelSet":
        """Rebuild a model set from persisted ``np.savez`` arrays."""
        return cls(
            degree=degree,
            coeffs=np.ascontiguousarray(arrays["coeffs"], dtype=np.float64),
            bounds=np.ascontiguousarray(arrays["bounds"], dtype=np.float64),
            totals=np.ascontiguousarray(arrays["totals"], dtype=np.float64),
            dom=np.ascontiguousarray(arrays["dom"], dtype=np.float64),
            weight=weight,
        )

    def describe(self) -> dict:
        """Summary used by reports and the bench payload."""
        return {
            "degree": self.degree,
            "subfields": self.num_subfields,
            "weight": self.weight,
            "nbytes": self.nbytes,
            "max_count_bound": float(self.bounds[:, 0:2].max())
            if len(self.bounds) else 0.0,
        }


def fit_aggregate_models(index, degree: int = DEFAULT_DEGREE
                         ) -> AggregateModelSet:
    """Fit models for every subfield of a grouped index.

    The pass reads each subfield's clustered cell range once; the I/O is
    charged as maintenance, not query traffic.
    """
    subfields = index.subfields
    n_sf = len(subfields)
    coeffs = np.zeros((n_sf, 6, degree + 1))
    bounds = np.zeros((n_sf, 6))
    totals = np.zeros((n_sf, 3))
    dom = np.zeros((n_sf, 2))
    field_type = index.field_type
    with index._maintenance():
        for sf in subfields:
            block = index.store.read_range(sf.ptr_start, sf.ptr_end)
            (dlo, dhi), tot, cf, bd = _fit_subfield(
                field_type, block, degree)
            dom[sf.sf_id] = (dlo, dhi)
            totals[sf.sf_id] = tot
            coeffs[sf.sf_id] = cf
            bounds[sf.sf_id] = bd
    return AggregateModelSet(degree=degree, coeffs=coeffs, bounds=bounds,
                             totals=totals, dom=dom)


# -- evaluation ------------------------------------------------------------


def _exact_components(field_type, block: np.ndarray, lo: float,
                      hi: float) -> dict[str, float]:
    """Exact per-block contributions via the vectorized estimation path."""
    vmins = block["vmin"].astype(np.float64)
    vmaxs = block["vmax"].astype(np.float64)
    mask = (vmins <= hi) & (vmaxs >= lo)
    return {
        "count": float(int(mask.sum())),
        "sum": float(((vmins + vmaxs) * 0.5)[mask].sum()),
        "area": float(field_type.estimate_area(block[mask], lo, hi)),
    }


def _avg_bound(count: float, count_bound: float, total: float,
               sum_bound: float) -> float:
    """Interval-arithmetic bound for ``sum / count``."""
    if count_bound == 0.0 and sum_bound == 0.0:
        return 0.0
    c_lo = count - count_bound
    if c_lo <= 0.0:
        return math.inf
    c_hi = count + count_bound
    s_lo, s_hi = total - sum_bound, total + sum_bound
    corners = (s_lo / c_lo, s_lo / c_hi, s_hi / c_lo, s_hi / c_hi)
    avg = total / count
    return max(avg - min(corners), max(corners) - avg)


def evaluate_aggregate(index, models: AggregateModelSet, kind: str,
                       lo: float, hi: float, *,
                       tolerance: float | None = None,
                       mode: str = "hybrid") -> AggregateResult:
    """Answer one aggregate query against a grouped index's models.

    ``mode="exact"`` routes every boundary subfield through the exact
    path; ``mode="hybrid"`` does so only for the worst-bound subfields
    until the remaining bound fits ``tolerance`` (``tolerance=None``
    keeps everything on the models); ``mode="model"`` never reads pages.
    The contributions are accumulated in ascending subfield order in
    every mode, so a hybrid answer whose exact set is *all* boundary
    subfields is byte-for-byte the ``mode="exact"`` answer.
    """
    _validate(kind, lo, hi, mode, tolerance)
    comps = _COMPONENTS[kind]
    before = index.stats.snapshot()
    with index.tracer.span("aggregate", {"kind": kind}) as span:
        dom_lo = models.dom[:, 0]
        dom_hi = models.dom[:, 1]
        inter = (dom_lo <= hi) & (dom_hi >= lo)
        covered = inter & (lo <= dom_lo) & (dom_hi <= hi)
        boundary = np.flatnonzero(inter & ~covered)
        covered_ids = np.flatnonzero(covered)

        base = {c: float(models.totals[covered_ids, _TOTAL_COL[c]].sum())
                for c in comps}
        # Model contributions and bounds for boundary subfields.  A
        # query edge at/over the domain end clamps to the exact total
        # (le side) or zero (lt side) — no model, no bound.
        need_le = hi < dom_hi[boundary]
        need_lt = lo > dom_lo[boundary]
        contrib = {}
        row_bounds = {}
        for c in comps:
            col_le, col_lt = _CURVE_COLS[c]
            term_le = np.where(
                need_le, models.eval_rows(boundary, col_le, hi),
                models.totals[boundary, _TOTAL_COL[c]])
            term_lt = np.where(
                need_lt, models.eval_rows(boundary, col_lt, lo), 0.0)
            contrib[c] = term_le - term_lt
            row_bounds[c] = (need_le * models.bounds[boundary, col_le]
                             + need_lt * models.bounds[boundary, col_lt])

        # Choose the exact set: all boundary subfields (exact mode), or
        # greedily the worst total-bound rows until the remaining bound
        # fits the tolerance (hybrid), or none (model).
        exact_rows = np.zeros(len(boundary), dtype=bool)
        if mode == "exact":
            exact_rows[:] = True
        elif mode == "hybrid" and tolerance is not None:
            joint = np.zeros(len(boundary))
            for c in comps:
                joint += row_bounds[c]
            order = np.argsort(-joint, kind="stable")
            rem = {c: float(row_bounds[c].sum()) for c in comps}

            def current_bound() -> float:
                if kind == "avg":
                    cnt = base["count"] + float(contrib["count"].sum())
                    sm = base["sum"] + float(contrib["sum"].sum())
                    return _avg_bound(cnt, rem["count"], sm, rem["sum"])
                return rem[comps[0]]

            for pos in order:
                if current_bound() <= tolerance:
                    break
                exact_rows[pos] = True
                for c in comps:
                    rem[c] -= float(row_bounds[c][pos])

        # Assemble in ascending subfield order — identical accumulation
        # order in every mode.
        values = dict(base)
        for row, sf_id in enumerate(boundary):
            if exact_rows[row]:
                sf = index.subfields[sf_id]
                block = index.store.read_range(sf.ptr_start, sf.ptr_end)
                exact = _exact_components(index.field_type, block, lo, hi)
                for c in comps:
                    values[c] += exact[c]
            else:
                for c in comps:
                    values[c] += float(contrib[c][row])
        final_bounds = {
            c: float(row_bounds[c][~exact_rows].sum()) for c in comps}

        if kind == "avg":
            count = values["count"]
            value = values["sum"] / count if count > 0 else 0.0
            bound = _avg_bound(count, final_bounds["count"],
                               values["sum"], final_bounds["sum"])
        else:
            value = values[comps[0]]
            bound = final_bounds[comps[0]]

        n_exact = int(exact_rows.sum())
        if span.enabled:
            span.attrs.update(
                covered=len(covered_ids),
                model=len(boundary) - n_exact, exact=n_exact)
    io = index.stats.diff(before)
    return AggregateResult(
        kind=kind, lo=lo, hi=hi, value=float(value), bound=float(bound),
        mode=mode, tolerance=tolerance,
        covered_subfields=len(covered_ids),
        model_subfields=len(boundary) - n_exact,
        exact_subfields=n_exact,
        page_reads=io.page_reads,
    )


def exact_aggregate(index, kind: str, lo: float,
                    hi: float) -> AggregateResult:
    """Exact aggregate for any access method via its candidate fetch.

    Used by non-grouped indexes (LinearScan, interval R-trees), which
    have no subfield model boundaries; grouped indexes use
    :func:`evaluate_aggregate` even in exact mode so hybrid answers can
    match it byte-for-byte.
    """
    _validate(kind, lo, hi, "exact", None)
    before = index.stats.snapshot()
    with index.tracer.span("aggregate", {"kind": kind}) as span:
        candidates = index._candidates(lo, hi)
        parts = _exact_components(index.field_type, candidates, lo, hi)
        if kind == "avg":
            value = (parts["sum"] / parts["count"]
                     if parts["count"] > 0 else 0.0)
        else:
            value = parts[kind]
        if span.enabled:
            span.attrs["candidates"] = len(candidates)
    io = index.stats.diff(before)
    return AggregateResult(
        kind=kind, lo=lo, hi=hi, value=float(value), bound=0.0,
        mode="exact", tolerance=None, covered_subfields=0,
        model_subfields=0, exact_subfields=0,
        page_reads=io.page_reads,
    )

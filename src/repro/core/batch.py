"""Batch execution of value queries with cross-query page caching.

The paper's protocol (§4) issues queries one at a time against a cold
store, so two queries over overlapping value intervals pay the full
random-read penalty twice.  A system serving query traffic can do much
better: collect queries into a batch, sort them on the value axis, merge
overlapping intervals into a single filtering pass each, and run the
whole batch through a shared LRU buffer pool so a page touched by several
queries is read from disk once.

:class:`BatchQueryEngine` implements that executor on top of *any* access
method (:class:`~repro.core.linearscan.LinearScanIndex`,
:class:`~repro.core.iall.IAllIndex`,
:class:`~repro.core.ihilbert.IHilbertIndex`, or the cost-based
:class:`~repro.core.planner.PlannedIndex`): the method keeps doing the
filtering it is built for, the engine decides *what* to filter and keeps
the buffer pool warm across queries.  Per-query answers are exactly the
answers of one-at-a-time execution — a group's candidate superset is
post-filtered per member with the same intersection predicate every
method uses — and per-query :class:`~repro.storage.stats.IOStats` charge
each page to the query that actually read it, so a batch's total I/O
counts shared pages once, not once per query.

:func:`run_sequential` executes the same workload one query at a time
(optionally cold, the paper's setting) and reports the same
:class:`BatchResult` shape, so batched and sequential execution can be
compared directly; ``benchmarks/test_bench_batch.py`` and the
``python -m repro.bench batch`` experiment do exactly that.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..obs.metrics import REGISTRY
from ..storage import IOStats, PoolCounters
from .base import EstimateMode, FaultMode, ValueIndex
from .query import QueryResult, ValueQuery

#: Default shared-cache capacity for a batch: 1024 pages = 4 MiB of the
#: paper's 4 KiB pages, a small slice of even a 2002-era server's RAM.
DEFAULT_BATCH_CACHE_PAGES = 1024

_BATCHES = REGISTRY.counter(
    "repro_batches_total",
    "Query batches executed, per access method.")
_BATCH_QUERIES = REGISTRY.counter(
    "repro_batch_queries_total",
    "Queries answered through the batch engine, per access method.")
_GROUP_SIZE = REGISTRY.histogram(
    "repro_batch_group_size",
    "Queries sharing one merged fetch group, per access method.")


@dataclass(frozen=True)
class QueryGroup:
    """A run of value-sorted queries merged into one fetch interval.

    ``members`` are positions into the caller's query list, in ascending
    ``(lo, hi)`` order; the group interval ``[lo, hi]`` is the union of
    the member intervals, so the group's candidate set is a superset of
    every member's.
    """

    lo: float
    hi: float
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of queries sharing this fetch."""
        return len(self.members)


def merge_queries(queries: Sequence[ValueQuery],
                  merge: bool = True) -> list[QueryGroup]:
    """Sort queries on the value axis and merge overlapping intervals.

    With ``merge=False`` every query stays its own group (the engine then
    relies on the shared buffer pool alone); otherwise queries whose
    intervals overlap or touch collapse into one group per connected run,
    the classic interval-union sweep.
    """
    order = sorted(range(len(queries)),
                   key=lambda i: (queries[i].lo, queries[i].hi))
    groups: list[QueryGroup] = []
    for i in order:
        q = queries[i]
        if merge and groups and q.lo <= groups[-1].hi:
            last = groups[-1]
            groups[-1] = QueryGroup(last.lo, max(last.hi, q.hi),
                                    last.members + (i,))
        else:
            groups.append(QueryGroup(q.lo, q.hi, (i,)))
    return groups


@dataclass
class BatchResult:
    """Outcome of one batch of value queries against one access method."""

    #: Per-query results, in the caller's original query order.
    results: list[QueryResult] = dc_field(default_factory=list)
    #: Aggregate I/O of the whole batch (shared pages counted once).
    io: IOStats = dc_field(default_factory=IOStats)
    #: Buffer-pool traffic during the batch, summed over the data-file
    #: and index-file pools.
    pool: PoolCounters = dc_field(default_factory=PoolCounters)
    #: Number of merged fetch groups the batch executed.
    groups: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def page_reads(self) -> int:
        """Total accounted page reads of the batch."""
        return self.io.page_reads

    @property
    def total_candidates(self) -> int:
        """Sum of per-query candidate counts."""
        return sum(r.candidate_count for r in self.results)


class BatchQueryEngine:
    """Executes batches of value queries against one access method.

    Parameters
    ----------
    index:
        Any built :class:`~repro.core.base.ValueIndex`.  The engine never
        copies its data; it only drives the index's own filtering step
        and (temporarily) enlarges its buffer pools.
    cache_pages:
        Shared buffer-pool capacity lent to the index for the duration of
        a batch.  The index's own configured capacity is never reduced;
        the effective capacity is the maximum of both.  After the batch
        the original capacity is restored (evicting what no longer fits),
        so single-query behaviour is unchanged.
    merge:
        Whether to merge overlapping query intervals into one filtering
        pass per connected run (default).  Disable to measure the effect
        of the shared cache alone.
    """

    def __init__(self, index: ValueIndex,
                 cache_pages: int = DEFAULT_BATCH_CACHE_PAGES,
                 merge: bool = True) -> None:
        if cache_pages < 0:
            raise ValueError(
                f"cache_pages must be >= 0, got {cache_pages}")
        self.index = index
        self.cache_pages = cache_pages
        self.merge = merge

    def run(self, queries: Sequence[ValueQuery],
            estimate: EstimateMode = "area",
            on_fault: FaultMode = "raise") -> BatchResult:
        """Execute a batch and return per-query + aggregate results.

        Results come back in the caller's query order regardless of the
        execution order.  Each group's fetch I/O is attributed to the
        group's first member; later members of the group are answered
        from the in-memory candidate superset and report zero I/O —
        which is precisely the amortization the batch buys.

        ``on_fault`` follows :meth:`~repro.core.base.ValueIndex.query`:
        with ``"skip"``, data pages that cannot be read are dropped from
        the group's fetch and the surviving faults are attached to the
        group's first member (the query that performed the I/O).
        """
        if on_fault not in ("raise", "skip"):
            raise ValueError(
                f"on_fault must be 'raise' or 'skip', got {on_fault!r}")
        queries = list(queries)
        if not queries:
            return BatchResult()
        tracer = self.index.tracer
        with tracer.span("batch") as batch_span:
            with tracer.span("merge"):
                groups = merge_queries(queries, merge=self.merge)
            if batch_span.enabled:
                batch_span.attrs["method"] = self.index.name
                batch_span.attrs["queries"] = len(queries)
                batch_span.attrs["groups"] = len(groups)
                batch_span.attrs["merge"] = self.merge
            pools = self._pools()
            saved_caps = [p.capacity for p in pools]
            before_pool = [p.counters() for p in pools]
            before_batch = self.index.stats.snapshot()
            for pool in pools:
                pool.resize(max(pool.capacity, self.cache_pages))
            results: list[QueryResult | None] = [None] * len(queries)
            try:
                if tracer.enabled:
                    for gi, group in enumerate(groups):
                        with tracer.span(f"group[{gi}]",
                                         {"lo": group.lo, "hi": group.hi,
                                          "size": group.size}):
                            self._run_group(group, queries, results,
                                            estimate, on_fault)
                else:
                    for group in groups:
                        self._run_group(group, queries, results, estimate,
                                        on_fault)
                pool_traffic = sum(
                    (p.counters().diff(b)
                     for p, b in zip(pools, before_pool)),
                    PoolCounters())
            finally:
                for pool, cap in zip(pools, saved_caps):
                    pool.resize(cap)
        if REGISTRY.enabled:
            method = self.index.name
            _BATCHES.inc(1, method=method)
            _BATCH_QUERIES.inc(len(queries), method=method)
            for group in groups:
                _GROUP_SIZE.observe(group.size, method=method)
        return BatchResult(results=results,
                           io=self.index.stats.diff(before_batch),
                           pool=pool_traffic, groups=len(groups))

    # -- internals ----------------------------------------------------------

    def _run_group(self, group: QueryGroup, queries: list[ValueQuery],
                   results: list[QueryResult | None],
                   estimate: EstimateMode,
                   on_fault: FaultMode = "raise") -> None:
        """One filtering pass over the group's union interval."""
        tracer = self.index.tracer
        before = self.index.stats.snapshot()
        self.index._fault_mode = on_fault
        self.index._query_faults = []
        try:
            candidates = self.index._candidates(group.lo, group.hi)
            group_faults = self.index._query_faults
        finally:
            self.index._fault_mode = "raise"
            self.index._query_faults = []
        fetch_io = self.index.stats.diff(before)
        # Candidate records of a member query are exactly the union
        # candidates intersecting its own interval: the same predicate
        # every access method's filtering step applies, evaluated in
        # float64 to match their arithmetic.
        vmin = candidates["vmin"].astype(np.float64)
        vmax = candidates["vmax"].astype(np.float64)
        for ordinal, i in enumerate(group.members):
            q = queries[i]
            mine = candidates[(vmin <= q.hi) & (vmax >= q.lo)]
            if tracer.enabled:
                with tracer.span("estimate", {"mode": estimate,
                                              "query": i}):
                    result = self.index._finish(q, mine, estimate)
            else:
                result = self.index._finish(q, mine, estimate)
            result.io = fetch_io if ordinal == 0 else IOStats()
            if ordinal == 0:
                # Faults belong to the member that performed the fetch,
                # mirroring the I/O attribution above.
                result.faults = group_faults
            results[i] = result

    def _pools(self):
        """Every buffer pool the index reads through (data + index file)."""
        pools = [self.index.store.pool]
        tree = getattr(self.index, "tree", None)
        if tree is not None:
            pools.append(tree.pool)
        return pools


def run_sequential(index: ValueIndex, queries: Sequence[ValueQuery],
                   estimate: EstimateMode = "area",
                   cold: bool = True) -> BatchResult:
    """Run the same workload one query at a time (the baseline).

    ``cold=True`` drops caches before every query — the paper's §4
    protocol and the natural contrast to :meth:`BatchQueryEngine.run`.
    """
    queries = list(queries)
    pools = [index.store.pool]
    tree = getattr(index, "tree", None)
    if tree is not None:
        pools.append(tree.pool)
    before_pool = [p.counters() for p in pools]
    before = index.stats.snapshot()
    results = []
    for query in queries:
        if cold:
            index.clear_caches()
        results.append(index.query(query, estimate=estimate))
    pool_traffic = sum(
        (p.counters().diff(b) for p, b in zip(pools, before_pool)),
        PoolCounters())
    return BatchResult(results=results, io=index.stats.diff(before),
                       pool=pool_traffic, groups=len(queries))

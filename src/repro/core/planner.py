"""Cost-based access-path selection over a subfield index.

The paper's experiments show each method has a regime: LinearScan wins
at very high selectivity, the subfield index everywhere else.  A real
system would not make the user choose — this module adds the classic
query-optimizer step on top of I-Hilbert: before executing, estimate the
I/O of (a) the filtered subfield path and (b) a sequential scan of the
same clustered file, from in-memory metadata alone, and take the cheaper
plan.  Both plans read the same record file, so the choice costs nothing
in storage.

:func:`estimate_plan` is the planning step on its own: it works on any
:class:`~repro.core.grouped.GroupedIntervalIndex` (including reloaded
ones), which is what ``python -m repro explain`` builds its report
from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field.base import Field
from ..obs.metrics import REGISTRY
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, Engine
from .cost import GroupingPolicy
from .ihilbert import IHilbertIndex
from ..curves import SpaceFillingCurve

_PLANS = REGISTRY.counter(
    "repro_planner_decisions_total",
    "Access-path decisions taken by the cost-based planner.")
_COST_RATIO = REGISTRY.histogram(
    "repro_planner_cost_ratio",
    "Estimated filtered-path cost over scan cost, per planned query.",
    buckets=(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
             5.0, 10.0))


@dataclass(frozen=True)
class CostConstants:
    """Relative I/O costs used by the planner (same units as the
    harness's disk model: one sequential page read = 1)."""

    random_read: float = 42.5     # 8.5 ms seek / 0.2 ms transfer
    sequential_read: float = 1.0


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one query."""

    path: str                 # "filtered" or "scan"
    filtered_cost: float
    scan_cost: float
    est_pages: int
    est_runs: int


def estimate_plan(index, lo: float, hi: float,
                  costs: CostConstants | None = None) -> Plan:
    """Estimate both access paths from metadata alone (no I/O).

    Works on any grouped (subfield) index: the filtered path's page
    count comes from coalescing the page ranges of the intersecting
    subfields — the same run structure the executor produces — and the
    scan path is one seek plus a sequential sweep of the record file.
    """
    costs = costs if costs is not None else CostConstants()
    per_page = index.store.records_per_page
    page_ranges = sorted(
        (sf.ptr_start // per_page, sf.ptr_end // per_page)
        for sf in index.subfields if sf.intersects(lo, hi))
    pages = 0
    runs = 0
    last_end = -2
    for first, end in page_ranges:
        if first <= last_end + 1:
            extend = max(0, end - last_end)
            pages += extend
            last_end = max(last_end, end)
        else:
            pages += end - first + 1
            runs += 1
            last_end = end
    tree_reads = index.tree.height
    filtered_cost = ((runs + tree_reads) * costs.random_read
                     + max(0, pages - runs) * costs.sequential_read)
    scan_cost = (costs.random_read
                 + max(0, index.store.num_pages - 1)
                 * costs.sequential_read)
    path = "filtered" if filtered_cost <= scan_cost else "scan"
    return Plan(path=path, filtered_cost=filtered_cost,
                scan_cost=scan_cost, est_pages=pages, est_runs=runs)


def scan_candidates(index, lo: float, hi: float) -> np.ndarray:
    """Sequential-scan filtering over any index's record store."""
    if index.store.num_pages and getattr(index, "_vector_fetch_ok",
                                         lambda: False)():
        block = index.store.read_pages(0, index.store.num_pages - 1)
        mask = ((block["vmin"].astype(np.float64) <= hi)
                & (block["vmax"].astype(np.float64) >= lo))
        return block[mask]
    matches = []
    for page in index.store.scan():
        mask = ((page["vmin"].astype(np.float64) <= hi)
                & (page["vmax"].astype(np.float64) >= lo))
        if mask.any():
            matches.append(page[mask])
    if not matches:
        return np.empty(0, dtype=index.store.dtype)
    if len(matches) == 1:
        return matches[0]
    return np.concatenate(matches)


class PlannedIndex(IHilbertIndex):
    """I-Hilbert with per-query scan-vs-index plan selection.

    The most recent decision is exposed as :attr:`last_plan`.
    """

    name = "I-Hilbert+planner"

    def __init__(self, field: Field,
                 curve: str | SpaceFillingCurve = "hilbert",
                 grouping: GroupingPolicy | None = None,
                 cache_pages: int = 0, stats: IOStats | None = None,
                 costs: CostConstants | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 engine: Engine = "vectorized",
                 bulk: bool = False) -> None:
        super().__init__(field, curve=curve, grouping=grouping,
                         cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend, engine=engine,
                         bulk=bulk)
        self.costs = costs if costs is not None else CostConstants()
        self.last_plan: Plan | None = None

    def plan(self, lo: float, hi: float) -> Plan:
        """Estimate both access paths from metadata (no I/O)."""
        plan = estimate_plan(self, lo, hi, self.costs)
        if REGISTRY.enabled:
            _PLANS.inc(1, path=plan.path)
            _COST_RATIO.observe(
                plan.filtered_cost / max(plan.scan_cost, 1e-12))
        return plan

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        with self.tracer.span("plan") as sp:
            self.last_plan = self.plan(lo, hi)
            if sp.enabled:
                sp.attrs.update(
                    path=self.last_plan.path,
                    filtered_cost=round(self.last_plan.filtered_cost, 3),
                    scan_cost=round(self.last_plan.scan_cost, 3),
                    est_pages=self.last_plan.est_pages,
                    est_runs=self.last_plan.est_runs)
        if self.last_plan.path == "scan":
            with self.tracer.span("fetch") as sp:
                if sp.enabled:
                    sp.attrs["path"] = "scan"
                return scan_candidates(self, lo, hi)
        return super()._candidates(lo, hi)

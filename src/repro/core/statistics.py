"""Value-distribution statistics and selectivity estimation.

Database optimizers decide between access paths from summary statistics,
not by executing the query.  This module summarizes a field's cell
intervals into cumulative histograms of low and high endpoints; the
count of cells intersecting ``[lo, hi]`` is then

    n  −  #(vmin > hi)  −  #(vmax < lo)

each term answered by one histogram lookup.  The two terms are *not*
symmetric: a cell with ``vmin == hi`` or ``vmax == lo`` touches the
query and must be counted, so the low-endpoint table is cumulative with
``<=`` while the high-endpoint table used for exclusion is strictly
``<``.  The estimator feeds the planner and the reports; its accuracy
is tested against exact counts (exactly, when the distinct endpoint
values fit in the bin budget — the grid then sits on the data values —
and within one bin's mass otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field.base import Field


@dataclass(frozen=True)
class FieldStatistics:
    """Compressed summary of a field's cell-interval distribution."""

    num_cells: int
    value_lo: float
    value_hi: float
    #: Histogram grid.  When the distinct endpoint values fit in the bin
    #: budget the grid *is* those values (the estimator is then exact at
    #: every data value, including degenerate constant fields whose
    #: ``linspace`` grid would collapse); otherwise ``bins + 1`` equally
    #: spaced edges.
    edges: np.ndarray
    #: cum_low[k] = number of cells with vmin <= edges[k].
    cum_low: np.ndarray
    #: cum_high[k] = number of cells with vmax <= edges[k].
    cum_high: np.ndarray
    #: cum_high_strict[k] = number of cells with vmax < edges[k] — the
    #: table the "entirely below [lo, hi]" term needs: a cell with
    #: ``vmax == lo`` still intersects the query.
    cum_high_strict: np.ndarray
    mean_interval_extent: float

    @classmethod
    def from_field(cls, field: Field, bins: int = 64) -> "FieldStatistics":
        """Collect statistics from a field's cell records."""
        records = field.cell_records()
        return cls.from_intervals(
            records["vmin"].astype(np.float64),
            records["vmax"].astype(np.float64), bins=bins)

    @classmethod
    def from_intervals(cls, vmins: np.ndarray, vmaxs: np.ndarray,
                       bins: int = 64) -> "FieldStatistics":
        """Collect statistics from raw interval endpoint arrays."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        vmins = np.asarray(vmins, dtype=np.float64)
        vmaxs = np.asarray(vmaxs, dtype=np.float64)
        if len(vmins) != len(vmaxs):
            raise ValueError("endpoint arrays must have equal length")
        if len(vmins) == 0:
            raise ValueError("no intervals to summarize")
        lo = float(vmins.min())
        hi = float(vmaxs.max())
        # Small/discrete endpoint sets keep their exact values as the
        # grid: interpolation nodes sit on the data, so lookups at data
        # values are exact.  This also covers the degenerate constant
        # field (lo == hi), where linspace would produce bins + 1
        # identical edges and break interpolation.
        points = np.unique(np.concatenate([vmins, vmaxs]))
        if len(points) <= bins + 1:
            edges = points
        else:
            edges = np.linspace(lo, hi, bins + 1)
        sorted_vmins = np.sort(vmins)
        sorted_vmaxs = np.sort(vmaxs)
        cum_low = np.searchsorted(sorted_vmins, edges, side="right")
        cum_high = np.searchsorted(sorted_vmaxs, edges, side="right")
        cum_high_strict = np.searchsorted(sorted_vmaxs, edges, side="left")
        return cls(
            num_cells=len(vmins),
            value_lo=lo,
            value_hi=hi,
            edges=edges,
            cum_low=cum_low.astype(np.float64),
            cum_high=cum_high.astype(np.float64),
            cum_high_strict=cum_high_strict.astype(np.float64),
            mean_interval_extent=float((vmaxs - vmins).mean()),
        )

    # -- estimation --------------------------------------------------------

    def _cum(self, table: np.ndarray, value: float) -> float:
        """Interpolated count of endpoints <= ``value``."""
        if value < self.edges[0]:
            return 0.0
        if value >= self.edges[-1]:
            return float(table[-1])
        return float(np.interp(value, self.edges, table))

    def _cum_strict(self, table: np.ndarray, value: float) -> float:
        """Interpolated count of endpoints < ``value``.

        Beyond the last grid point every endpoint is strictly below;
        at and before the first, none is (``np.interp`` clamps to
        ``table[0]``, which is 0 for a strict table over high
        endpoints: no ``vmax`` lies below the smallest ``vmin``).
        """
        if value > self.edges[-1]:
            return float(self.num_cells)
        return float(np.interp(value, self.edges, table))

    def estimate_candidates(self, lo: float, hi: float) -> float:
        """Estimated number of cells whose interval intersects [lo, hi]."""
        if lo > hi:
            raise ValueError(f"empty query: lo={lo} > hi={hi}")
        n = float(self.num_cells)
        # Cells entirely above the query: vmin > hi (a cell with
        # vmin == hi intersects, so the inclusive table is correct here).
        above = n - self._cum(self.cum_low, hi)
        # Cells entirely below the query: vmax < lo, strictly — a cell
        # with vmax == lo intersects [lo, hi] and must not be excluded.
        below = self._cum_strict(self.cum_high_strict, lo)
        return max(0.0, n - above - below)

    def estimate_selectivity(self, lo: float, hi: float) -> float:
        """Estimated candidate fraction in [0, 1]."""
        return self.estimate_candidates(lo, hi) / self.num_cells

    def describe(self) -> dict:
        """Summary used in reports."""
        span = self.value_hi - self.value_lo
        return {
            "cells": self.num_cells,
            "value_range": (self.value_lo, self.value_hi),
            "mean_interval_extent": self.mean_interval_extent,
            "relative_interval_extent": (self.mean_interval_extent / span
                                         if span > 0 else 0.0),
            "bins": max(len(self.edges) - 1, 1),
        }

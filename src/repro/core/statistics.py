"""Value-distribution statistics and selectivity estimation.

Database optimizers decide between access paths from summary statistics,
not by executing the query.  This module summarizes a field's cell
intervals into two cumulative histograms (of low endpoints and of high
endpoints); the count of cells intersecting ``[lo, hi]`` is then

    n  −  #(vmin > hi)  −  #(vmax < lo)

each term answered by one histogram lookup.  The estimator feeds the
planner and the reports; its accuracy is tested against exact counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field.base import Field


@dataclass(frozen=True)
class FieldStatistics:
    """Compressed summary of a field's cell-interval distribution."""

    num_cells: int
    value_lo: float
    value_hi: float
    #: Histogram grid (bin edges), length ``bins + 1``.
    edges: np.ndarray
    #: cum_low[k] = number of cells with vmin <= edges[k].
    cum_low: np.ndarray
    #: cum_high[k] = number of cells with vmax <= edges[k].
    cum_high: np.ndarray
    mean_interval_extent: float

    @classmethod
    def from_field(cls, field: Field, bins: int = 64) -> "FieldStatistics":
        """Collect statistics from a field's cell records."""
        records = field.cell_records()
        return cls.from_intervals(
            records["vmin"].astype(np.float64),
            records["vmax"].astype(np.float64), bins=bins)

    @classmethod
    def from_intervals(cls, vmins: np.ndarray, vmaxs: np.ndarray,
                       bins: int = 64) -> "FieldStatistics":
        """Collect statistics from raw interval endpoint arrays."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        vmins = np.asarray(vmins, dtype=np.float64)
        vmaxs = np.asarray(vmaxs, dtype=np.float64)
        if len(vmins) != len(vmaxs):
            raise ValueError("endpoint arrays must have equal length")
        if len(vmins) == 0:
            raise ValueError("no intervals to summarize")
        lo = float(vmins.min())
        hi = float(vmaxs.max())
        edges = np.linspace(lo, hi, bins + 1)
        cum_low = np.searchsorted(np.sort(vmins), edges, side="right")
        cum_high = np.searchsorted(np.sort(vmaxs), edges, side="right")
        return cls(
            num_cells=len(vmins),
            value_lo=lo,
            value_hi=hi,
            edges=edges,
            cum_low=cum_low.astype(np.float64),
            cum_high=cum_high.astype(np.float64),
            mean_interval_extent=float((vmaxs - vmins).mean()),
        )

    # -- estimation --------------------------------------------------------

    def _cum(self, table: np.ndarray, value: float) -> float:
        """Interpolated count of endpoints <= ``value``."""
        if value < self.edges[0]:
            return 0.0
        if value >= self.edges[-1]:
            return float(table[-1])
        return float(np.interp(value, self.edges, table))

    def estimate_candidates(self, lo: float, hi: float) -> float:
        """Estimated number of cells whose interval intersects [lo, hi]."""
        if lo > hi:
            raise ValueError(f"empty query: lo={lo} > hi={hi}")
        n = float(self.num_cells)
        # Cells entirely above the query: vmin > hi.
        above = n - self._cum(self.cum_low, hi)
        # Cells entirely below the query: vmax < lo.
        below = self._cum(self.cum_high, lo)
        return max(0.0, n - above - below)

    def estimate_selectivity(self, lo: float, hi: float) -> float:
        """Estimated candidate fraction in [0, 1]."""
        return self.estimate_candidates(lo, hi) / self.num_cells

    def describe(self) -> dict:
        """Summary used in reports."""
        span = self.value_hi - self.value_lo
        return {
            "cells": self.num_cells,
            "value_range": (self.value_lo, self.value_hi),
            "mean_interval_extent": self.mean_interval_extent,
            "relative_interval_extent": (self.mean_interval_extent / span
                                         if span > 0 else 0.0),
            "bins": len(self.edges) - 1,
        }

"""Bulk-load ingestion: build a clustered index without per-insert work.

The incremental build path inserts every subfield MBR into the R*-tree
one at a time — a root-to-leaf descent, margin-minimizing split and
possible forced reinsert per entry — and appends cell records page by
page.  For a fresh field none of that adaptivity buys anything: the
final clustered order is already known (ascending Hilbert key), so the
build can be a sort plus a sequential pack:

1. linearize cells by the Hilbert key of their center
   (``numpy.argsort``, vectorized curve arithmetic);
2. pack the record file sequentially in curve order
   (:meth:`~repro.storage.records.RecordStore.bulk_extend` — whole
   pages written in one pass, no per-record tail shuffling);
3. build the R*-tree bottom-up, Kamel–Faloutsos style: pack sorted
   entries into leaves at the fill target, then parents over leaves,
   up to the root (:meth:`~repro.rstar.tree.RStarTree.bulk_load_arrays`
   — no descent, no splits, no reinsertion).

Everything downstream is unchanged: the same pages flow through the
same :class:`~repro.storage.disk.DiskManager`, so WAL/manifest commit
semantics, scrub coverage and crash-safety of a subsequent
:func:`~repro.core.persist.save_index` are identical to the
incremental path, and queries cannot tell the two builds apart.

:func:`bulk_build` is the one entry point; the facade's
``bulk_build`` verb and ``python -m repro build --bulk`` wrap it.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from ..field.base import Field
from .base import ValueIndex


@dataclass(frozen=True)
class BulkLoadReport:
    """What one bulk build did, for logs and benchmarks."""

    method: str
    cells: int
    build_seconds: float
    cells_per_second: float
    data_pages: int
    index_pages: int
    subfields: int | None      # None for methods without grouping

    def to_dict(self) -> dict:
        """Plain-dict form of the report (JSON- and facade-friendly)."""
        return asdict(self)


def bulk_methods() -> dict[str, type[ValueIndex]]:
    """Index classes that support the bulk build path, by method name."""
    from .iall import IAllIndex
    from .ihilbert import IHilbertIndex
    from .planner import PlannedIndex
    return {
        "I-All": IAllIndex,
        "I-Hilbert": IHilbertIndex,
        "I-Hilbert+planner": PlannedIndex,
    }


def bulk_build(field: Field, method: str = "I-Hilbert",
               **kwargs) -> tuple[ValueIndex, BulkLoadReport]:
    """Build an index over ``field`` through the bulk-load path.

    ``method`` names one of :func:`bulk_methods`; remaining keyword
    arguments (``curve``, ``grouping``, ``cache_pages``,
    ``disk_backend``, ``engine``, ...) pass through to the index
    constructor.  Returns the built index and a timing report whose
    ``cells_per_second`` is the benchmark's ingestion metric.
    """
    methods = bulk_methods()
    try:
        cls = methods[method]
    except KeyError:
        raise ValueError(
            f"method {method!r} has no bulk build path; expected one of "
            f"{sorted(methods)}") from None
    start = time.perf_counter()
    index = cls(field, bulk=True, **kwargs)
    elapsed = time.perf_counter() - start
    cells = len(index.store)
    return index, BulkLoadReport(
        method=index.name,
        cells=cells,
        build_seconds=elapsed,
        cells_per_second=cells / elapsed if elapsed > 0 else float("inf"),
        data_pages=index.data_pages,
        index_pages=index.index_pages,
        subfields=(len(index.subfields)
                   if hasattr(index, "subfields") else None),
    )

"""Conjunctive multi-field value queries (paper §1's ocean scenario).

"Find regions where the temperature is between 20° and 25° *and* the
salinity is between 12% and 13%": each condition runs against its own
value index; candidate cells are intersected by cell id (the fields must
share one mesh); inside each surviving cell the answer region is obtained
by clipping the cell's linear sub-triangles against *both* value bands —
exact, because both fields are affine over the same sub-triangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ..field.extraction import AnswerRegion
from ..field.interpolation import plane_coefficients
from ..geometry import clip_to_value_band, polygon_area
from ..storage import IOStats
from .base import ValueIndex
from .query import ValueQuery


@dataclass
class MultiFieldResult:
    """Outcome of a conjunctive query across co-registered fields."""

    queries: list[ValueQuery]
    per_field_candidates: list[int]
    common_cells: int
    area: float
    regions: list[AnswerRegion] = dc_field(default_factory=list)
    io: IOStats = dc_field(default_factory=IOStats)


def conjunctive_query(indexes: list[ValueIndex],
                      bands: list[tuple[float, float]],
                      with_regions: bool = False) -> MultiFieldResult:
    """Run a conjunction of value conditions over co-registered fields.

    All ``indexes`` must be built over fields sharing the same mesh (equal
    cell ids and geometry).  Returns exact conjunction area and optionally
    the polygonal regions.
    """
    if len(indexes) != len(bands):
        raise ValueError(
            f"{len(indexes)} indexes vs {len(bands)} bands")
    if len(indexes) < 2:
        raise ValueError("a conjunctive query needs at least two fields")
    meshes = {idx.field.num_cells for idx in indexes}
    if len(meshes) != 1:
        raise ValueError("fields must share one mesh (same cell count)")

    io_before = [idx.stats.snapshot() for idx in indexes]
    queries = [ValueQuery(lo, hi) for lo, hi in bands]
    candidate_sets: list[dict[int, np.void]] = []
    for idx, q in zip(indexes, queries):
        records = idx._candidates(q.lo, q.hi)
        candidate_sets.append(
            {int(r["cell_id"]): r for r in records})

    common = set(candidate_sets[0])
    for cand in candidate_sets[1:]:
        common &= set(cand)

    total_io = IOStats()
    for idx, before in zip(indexes, io_before):
        delta = idx.stats.diff(before)
        total_io.page_reads += delta.page_reads
        total_io.sequential_reads += delta.sequential_reads
        total_io.random_reads += delta.random_reads
        total_io.cache_hits += delta.cache_hits

    regions: list[AnswerRegion] = []
    area = 0.0
    field_types = [idx.field_type for idx in indexes]
    for cell_id in sorted(common):
        cell_records = [cand[cell_id] for cand in candidate_sets]
        tri_lists = [ft.record_triangles(rec)
                     for ft, rec in zip(field_types, cell_records)]
        # All fields share the mesh, so sub-triangle k has identical
        # geometry across fields; only the vertex values differ.
        for k, (points, _values) in enumerate(tri_lists[0]):
            poly = list(points)
            for (tri_points, tri_values), (lo, hi) in zip(
                    (tl[k] for tl in tri_lists), bands):
                a, b, c = plane_coefficients(tri_points, tri_values)
                poly = clip_to_value_band(
                    poly, lambda p, a=a, b=b, c=c: a * p[0] + b * p[1] + c,
                    lo, hi)
                if len(poly) < 3:
                    break
            piece = polygon_area(poly)
            if len(poly) >= 3 and piece > 0.0:
                area += piece
                if with_regions:
                    regions.append(
                        AnswerRegion(cell_id, tuple(poly), piece))

    return MultiFieldResult(
        queries=queries,
        per_field_candidates=[len(c) for c in candidate_sets],
        common_cells=len(common),
        area=area,
        regions=regions,
        io=total_io,
    )

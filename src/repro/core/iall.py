"""The 'I-All' baseline (paper §3): one R*-tree entry per cell interval.

Every cell's ``[min, max]`` becomes a 1-D MBR in an R*-tree whose leaf
entries point at the cell's record id.  The tree is large (one entry per
cell) and its leaves are heavily overlapping, so while low-selectivity
queries are fast, high-selectivity queries degrade into per-cell random
reads — the failure mode the paper demonstrates in Fig. 11.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..geometry import Rect
from ..rstar import RStarTree
from ..storage import IOStats, PAGE_SIZE, RetryPolicy
from .base import DiskBackend, Engine, ValueIndex


class IAllIndex(ValueIndex):
    """R*-tree over every individual cell interval.

    Parameters
    ----------
    field:
        Field to index.
    bulk:
        When True (default) the tree is built with Hilbert-packed bulk
        loading (Kamel–Faloutsos, paper ref [14]); when False, entries are
        inserted one by one through the full R* insertion path.
    cache_pages:
        Buffer-pool capacity for both the data file and the tree file.
    """

    name = "I-All"

    def __init__(self, field: Field, bulk: bool = True,
                 cache_pages: int = 0, stats: IOStats | None = None,
                 page_size: int = PAGE_SIZE,
                 retry_policy: RetryPolicy | None = None,
                 disk_backend: DiskBackend = "list",
                 engine: Engine = "vectorized") -> None:
        super().__init__(field, cache_pages=cache_pages, stats=stats,
                         page_size=page_size, retry_policy=retry_policy,
                         disk_backend=disk_backend, engine=engine)
        records = field.cell_records()
        if bulk:
            self.store.bulk_extend(records)
        else:
            self.store.extend(records)
        self.index_disk = self._make_disk("iall-tree")
        self.tree = RStarTree(dim=1, disk=self.index_disk,
                              cache_pages=cache_pages)
        if bulk:
            # Array-native packing: identical pages to the Rect-object
            # bulk_load (float() of a float32 is exact in float64).
            self.tree.bulk_load_arrays(
                records["vmin"].astype(np.float64),
                records["vmax"].astype(np.float64),
                np.arange(len(records), dtype=np.int64))
        else:
            for rid, (lo, hi) in enumerate(zip(records["vmin"],
                                               records["vmax"])):
                self.tree.insert(Rect.from_interval(float(lo), float(hi)),
                                 rid)
        self.tree.flush()

    @property
    def index_pages(self) -> int:
        return self.index_disk.num_pages

    def clear_caches(self) -> None:
        super().clear_caches()
        self.tree.pool.clear()
        self.index_disk.reset_head()

    def _apply_cell_updates(self, cell_ids: np.ndarray,
                            records: np.ndarray) -> None:
        # rid == cell_id (records are stored in cell order).  Each dirty
        # cell's old interval entry migrates in the tree: delete the
        # entry under its previous rectangle (re-read from the store —
        # float() of a float32 is exact, so the rect matches the one
        # inserted at build time), rewrite the page, insert the new one.
        dirty_tree = False
        for cell_id, record in zip(cell_ids, records):
            rid = int(cell_id)
            old = self.store.get(rid)
            old_lo, old_hi = float(old["vmin"]), float(old["vmax"])
            new_lo, new_hi = float(record["vmin"]), float(record["vmax"])
            self.store.update(rid, record)
            if (old_lo, old_hi) == (new_lo, new_hi):
                continue
            if not self.tree.delete(Rect.from_interval(old_lo, old_hi), rid):
                raise RuntimeError(
                    f"I-All tree lost the entry for cell {rid} "
                    f"[{old_lo}, {old_hi}] — index is inconsistent")
            self.tree.insert(Rect.from_interval(new_lo, new_hi), rid)
            dirty_tree = True
        if dirty_tree:
            self.tree.flush()

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        tracer = self.tracer
        with tracer.span("filter") as span:
            rids = self.tree.search(Rect.from_interval(lo, hi))
            if span.enabled:
                span.attrs["entries"] = len(rids)
        if len(rids) == 0:
            return np.empty(0, dtype=self.store.dtype)
        # A realistic executor sorts the rid list so page fetches are
        # deduplicated and as sequential as the clustering permits.
        rids_arr = np.sort(np.asarray(rids, dtype=np.int64))
        per_page = self.store.records_per_page
        pages = rids_arr // per_page
        slots = rids_arr - pages * per_page
        with tracer.span("fetch"):
            if self._vector_fetch_ok():
                # One batched fetch of the (deduplicated, ascending)
                # page set, then a single gather in rid order — the
                # same reads and output as the page-group loop below.
                records, upages, offsets = self.store.read_page_set(pages)
                return records[offsets[np.searchsorted(upages, pages)]
                               + slots]
            chunks = []
            start = 0
            for end in range(1, len(pages) + 1):
                if end == len(pages) or pages[end] != pages[start]:
                    page_records = self._read_data_page(int(pages[start]))
                    if page_records is not None:
                        chunks.append(page_records[slots[start:end]])
                    start = end
        if not chunks:
            return np.empty(0, dtype=self.store.dtype)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

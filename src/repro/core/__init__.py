"""The paper's contribution: value-domain access methods for fields."""

from .aggregate import (
    AGGREGATE_KINDS,
    AGGREGATE_MODES,
    AggregateModelSet,
    AggregateResult,
    fit_aggregate_models,
)
from .base import UPDATE_CRASH_POINTS, ValueIndex
from .batch import (
    BatchQueryEngine,
    BatchResult,
    QueryGroup,
    merge_queries,
    run_sequential,
)
from .cost import (
    CostBasedGrouping,
    GroupingPolicy,
    ThresholdGrouping,
    group_cells,
)
from .bulkload import BulkLoadReport, bulk_build, bulk_methods
from .facade import (
    EngineFacade,
    FacadeError,
    FieldExistsError,
    FieldHandle,
    UnknownFieldError,
)
from .grouped import GroupedIntervalIndex
from .iall import IAllIndex
from .ihilbert import IHilbertIndex, default_curve_order, linearize
from .iquadtree import IntervalQuadtreeIndex
from .intervaltree import ITreeIndex
from .linearscan import LinearScanIndex
from .multiband import (
    MultiBandResult,
    complement_bands,
    intersect_bands,
    normalize_bands,
    union_query,
)
from .multifield import MultiFieldResult, conjunctive_query
from .parallel import DeviceModel, ParallelQueryEngine, ParallelResult
from .persist import PersistError, load_index, save_index
from .planner import CostConstants, Plan, PlannedIndex
from .statistics import FieldStatistics
from .pointindex import PointIndex
from .query import QueryResult, ValueQuery
from .subfield import Subfield

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
    "I-Quadtree": IntervalQuadtreeIndex,
}

__all__ = [
    "AGGREGATE_KINDS",
    "AGGREGATE_MODES",
    "AggregateModelSet",
    "AggregateResult",
    "fit_aggregate_models",
    "BatchQueryEngine",
    "BatchResult",
    "BulkLoadReport",
    "bulk_build",
    "bulk_methods",
    "QueryGroup",
    "merge_queries",
    "run_sequential",
    "CostBasedGrouping",
    "EngineFacade",
    "FacadeError",
    "FieldExistsError",
    "FieldHandle",
    "GroupedIntervalIndex",
    "GroupingPolicy",
    "UnknownFieldError",
    "FieldStatistics",
    "IAllIndex",
    "ITreeIndex",
    "IHilbertIndex",
    "IntervalQuadtreeIndex",
    "LinearScanIndex",
    "METHODS",
    "MultiBandResult",
    "MultiFieldResult",
    "complement_bands",
    "intersect_bands",
    "normalize_bands",
    "union_query",
    "CostConstants",
    "DeviceModel",
    "ParallelQueryEngine",
    "ParallelResult",
    "PersistError",
    "Plan",
    "PlannedIndex",
    "load_index",
    "save_index",
    "PointIndex",
    "QueryResult",
    "Subfield",
    "ThresholdGrouping",
    "UPDATE_CRASH_POINTS",
    "ValueIndex",
    "ValueQuery",
    "conjunctive_query",
    "default_curve_order",
    "group_cells",
    "linearize",
]

"""Scatter-gather coordinator over Hilbert-range shards.

:class:`ShardedEngine` presents N per-shard access methods as one
:class:`~repro.core.base.ValueIndex`: the same ``query()`` pipeline,
batch engines, facade verbs, and serve layer run over it unchanged,
while the filtering step fans out to the shards and the gather merges
their candidates back into **exactly** the byte sequence the unsharded
method would have produced.  That equivalence is the design anchor —
sharding must never change an answer — and rests on three invariants:

* shards slice the *global* Hilbert order at page-aligned cuts
  (:mod:`repro.shard.shardmap`), so shard record files partition the
  unsharded clustered file and per-page accounting adds up;
* each shard is an ordinary index over a
  :class:`~repro.shard.field.ShardFieldView`, whose value geometry
  delegates to the base field — cost-model parameters and grid keys are
  identical everywhere;
* a freshly built I-Hilbert shard *inherits* the global grouping: the
  §3.1.2 greedy pass runs once over the whole field, groups are clipped
  at shard cuts, and clipped pieces keep the parent group's interval,
  so the set of data pages any query touches is the unsharded set,
  merely distributed.

Each shard is wrapped in its own :class:`~repro.core.facade.EngineFacade`
handle, so it keeps a private WAL, compaction schedule, IOStats, and
buffer pools; the coordinator aggregates them behind
:class:`ValueIndex`-shaped shims (``store``/``pool``) for the facade and
batch engines.  Scatter-gather runs in-process by default and across
forked worker processes under :meth:`ShardedEngine.workers`.

Rebalancing (:meth:`ShardedEngine.rebalance`) splits a shard whose size
or §3.1.2 cost drift crosses a threshold and merges undersized
neighbours, rebuilding only the affected shards from their *live*
records and atomically re-committing the shard map.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..core.base import FaultMode, PAGE_SIZE, ValueIndex
from ..core.cost import CostBasedGrouping, group_cells
from ..core.facade import EngineFacade
from ..core.grouped import GroupedIntervalIndex
from ..core.iall import IAllIndex
from ..core.ihilbert import (default_curve_order, linearize, make_curve,
                             centroid_grid_coords)
from ..core.linearscan import LinearScanIndex
from ..core.persist import load_index, save_index
from ..core.subfield import Subfield
from ..field.base import Field
from ..geometry import Rect
from ..obs.trace import NULL_TRACER
from ..rstar import RStarTree
from ..storage import IOStats, PAGE_HEADER_SIZE, PoolCounters, TenantCounters
from ..storage.remote import SimulatedObjectStore, remote_backend
from .field import shard_field_view
from .shardmap import (ShardMap, aligned_cut, build_shard_map,
                       load_shard_map, save_shard_map)

#: Access methods the coordinator can build per shard.  The gather
#: merge key depends on the unsharded method's candidate order: the
#: clustered (grouped) layout emits candidates in global Hilbert order
#: — which shard concatenation preserves — while the cell-ordered
#: methods emit ascending cell id.
SHARD_METHODS = ("I-Hilbert", "I-All", "LinearScan")

_METHOD_ALIASES = {
    "i-hilbert": "I-Hilbert", "ihilbert": "I-Hilbert",
    "i-all": "I-All", "iall": "I-All",
    "linearscan": "LinearScan", "linear-scan": "LinearScan",
    "scan": "LinearScan",
}


class ShardError(Exception):
    """Sharding-layer failure (not an engine/storage fault)."""


def _canonical_method(method: str) -> str:
    name = _METHOD_ALIASES.get(str(method).lower())
    if name is None:
        raise ShardError(
            f"unknown shard method {method!r}; expected one of "
            f"{SHARD_METHODS}")
    return name


# -- aggregate shims ----------------------------------------------------------

class _FanoutPool:
    """Broadcast/aggregate view over every pool of every shard.

    Satisfies the slice of the :class:`~repro.storage.buffer.BufferPool`
    API the facade and batch engines drive: capacity lending (resize is
    broadcast, capacity reads uniform), counter aggregation, tenant
    attribution, and cache clearing.
    """

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine

    def _pools(self) -> list:
        return [pool for rt in self._engine.shards for pool in rt.pools()]

    @property
    def capacity(self) -> int:
        pools = self._pools()
        return max((p.capacity for p in pools), default=0)

    def __len__(self) -> int:
        return sum(len(p) for p in self._pools())

    # Raw counter attributes, mirrored from BufferPool (the tracer and
    # exporters read these directly rather than through counters()).
    @property
    def hits(self) -> int:
        return sum(p.hits for p in self._pools())

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self._pools())

    @property
    def evictions(self) -> int:
        return sum(p.evictions for p in self._pools())

    def resize(self, capacity: int) -> None:
        for pool in self._pools():
            pool.resize(capacity)

    def clear(self) -> None:
        for pool in self._pools():
            pool.clear()

    def invalidate(self, page_id: int) -> None:
        # Page ids are per shard file; a global invalidation hint can
        # only be conservative.
        for pool in self._pools():
            pool.invalidate(page_id)

    def counters(self) -> PoolCounters:
        total = PoolCounters()
        for pool in self._pools():
            total = total + pool.counters()
        return total

    def reset_counters(self) -> None:
        for pool in self._pools():
            pool.reset_counters()

    def set_tenant(self, tenant: str | None) -> str | None:
        previous = None
        for k, pool in enumerate(self._pools()):
            saved = pool.set_tenant(tenant)
            if k == 0:
                previous = saved
        return previous

    def tenant_counters(self) -> dict[str, TenantCounters]:
        merged: dict[str, TenantCounters] = {}
        for pool in self._pools():
            for tenant, counters in pool.tenant_counters().items():
                have = merged.get(tenant, TenantCounters())
                merged[tenant] = TenantCounters(
                    hits=have.hits + counters.hits,
                    misses=have.misses + counters.misses,
                    bytes_read=have.bytes_read + counters.bytes_read)
        return merged

    def reset_tenant_counters(self) -> None:
        for pool in self._pools():
            pool.reset_tenant_counters()

    def tenant_residency(self) -> dict:
        merged: dict = {}
        for pool in self._pools():
            _merge_numeric(merged, pool.tenant_residency())
        return merged


def _merge_numeric(into: dict, other: dict) -> None:
    for key, value in other.items():
        if isinstance(value, dict):
            _merge_numeric(into.setdefault(key, {}), value)
        else:
            into[key] = into.get(key, 0) + value


class _AggregateStore:
    """The coordinator's ``index.store`` shim: sums over shard stores."""

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine
        self.pool = _FanoutPool(engine)

    @property
    def dtype(self) -> np.dtype:
        return self._engine.shards[0].index.store.dtype

    @property
    def records_per_page(self) -> int:
        return self._engine.shards[0].index.store.records_per_page

    def __len__(self) -> int:
        return sum(len(rt.index.store) for rt in self._engine.shards)

    @property
    def num_pages(self) -> int:
        return sum(rt.index.store.num_pages for rt in self._engine.shards)

    def scan(self):
        """Pages of every shard store, in shard (= global Hilbert) order."""
        for rt in self._engine.shards:
            yield from rt.index.store.scan()


# -- per-shard state ----------------------------------------------------------

class ShardRuntime:
    """One shard: its spec, index, and private engine facade.

    The facade handle is the shard's operational identity — its own
    WAL attachment, IOStats, buffer pools, tenant accounting, and
    compaction all live behind it, exactly as a single-field engine's
    would (ISSUE: each shard is a miniature engine, not a slice of a
    shared one).
    """

    __slots__ = ("spec", "uid", "index", "facade")

    def __init__(self, spec, uid: int, index: ValueIndex) -> None:
        self.spec = spec
        self.uid = uid
        self.index = index
        self.facade = EngineFacade(default_workers=1)
        self.facade.open_field(self.name, index)

    @property
    def name(self) -> str:
        """Stable shard name (``shard-<uid>``); uids survive splits."""
        return f"shard-{self.uid}"

    def pools(self) -> list:
        """This shard's buffer pools (data store + R*-tree, if any)."""
        pools = [self.index.store.pool]
        tree = getattr(self.index, "tree", None)
        if tree is not None:
            pools.append(tree.pool)
        return pools

    def stats(self) -> dict:
        """The facade's serving statistics for this shard."""
        return self.facade.stats(self.name)


class _ShardGroupedIndex(GroupedIntervalIndex):
    """A shard's I-Hilbert index, optionally with inherited intervals.

    When a group of the *global* §3.1.2 grouping is clipped at a shard
    cut, each piece keeps the parent group's ``[lo, hi]`` interval
    (``forced_intervals``): a query then selects a piece exactly when
    the unsharded engine selects the parent group, so the union of
    fetched data pages is the unsharded set.  Updates and compaction
    recompute intervals exactly from the live records, shrinking the
    forced hulls — answers stay equal (an exact interval is contained
    in its hull), only the page-identity pinning is fresh-build-only.
    """

    name = "I-Hilbert"

    def __init__(self, field: Field, order, groups, *,
                 forced_intervals=None, **kwargs) -> None:
        super().__init__(field, order, groups, **kwargs)
        if forced_intervals is not None:
            self._force_intervals(forced_intervals)

    def _force_intervals(self, intervals) -> None:
        if len(intervals) != len(self.subfields):
            raise ShardError(
                f"{len(intervals)} forced intervals for "
                f"{len(self.subfields)} subfields")
        changed = False
        for sf, (lo, hi) in zip(list(self.subfields), intervals):
            lo, hi = float(lo), float(hi)
            if lo > sf.lo or hi < sf.hi:
                raise ShardError(
                    f"forced interval [{lo}, {hi}] does not contain "
                    f"subfield {sf.sf_id}'s exact [{sf.lo}, {sf.hi}]")
            if (lo, hi) != (sf.lo, sf.hi):
                self.subfields[sf.sf_id] = Subfield(
                    sf.sf_id, lo, hi, sf.ptr_start, sf.ptr_end)
                changed = True
        self._built_costs = [
            self._sf_cost(sf, si)
            for sf, si in zip(self.subfields, self._sf_si)]
        if not changed:
            return
        # Rebuild the 1-D R*-tree over the widened intervals (the
        # compact() rebuild idiom: fresh disk, same injector and cache).
        injector = self.index_disk.fault_injector
        cache_pages = self.tree.pool.capacity
        self.index_disk = self._make_disk("sf-tree")
        self.index_disk.fault_injector = injector
        self.tree = RStarTree(dim=1, disk=self.index_disk,
                              cache_pages=cache_pages)
        self.tree.bulk_load(
            [Rect.from_interval(sf.lo, sf.hi) for sf in self.subfields],
            range(len(self.subfields)))
        self.tree.flush()


# -- the coordinator ----------------------------------------------------------

class ShardedEngine(ValueIndex):
    """N Hilbert-range shards behind one ``ValueIndex`` interface.

    Parameters
    ----------
    field:
        The field to shard.  Its record dtype must carry a ``cell_id``
        column (all built-in field types do) — the gather merge key.
    n_shards:
        Requested shard count; cut alignment may collapse adjacent
        cuts, so the built count can be lower (never higher).
    method:
        Per-shard access method: ``"I-Hilbert"`` (default), ``"I-All"``
        or ``"LinearScan"``.
    curve:
        Linearization curve name (as in
        :class:`~repro.core.ihilbert.IHilbertIndex`).
    cache_pages:
        Buffer-pool capacity *per shard* (data file; and tree file for
        indexed methods).
    remote_store / remote_cache_pages:
        When a :class:`~repro.storage.remote.SimulatedObjectStore` is
        given, every shard's pages live in it — each shard disk behind
        its own ``remote_cache_pages``-frame local cache under the
        namespace ``shard-<uid>`` — and ``disk_backend`` is ignored.
    map_dir:
        When given, the shard map is committed there at build time and
        re-committed atomically after every rebalance.
    """

    name = "Sharded"

    def __init__(self, field: Field, n_shards: int = 4,
                 method: str = "I-Hilbert", curve: str = "hilbert",
                 cache_pages: int = 0,
                 page_size: int = PAGE_SIZE,
                 retry_policy=None,
                 disk_backend="list",
                 remote_store: SimulatedObjectStore | None = None,
                 remote_cache_pages: int = 64,
                 map_dir: str | Path | None = None) -> None:
        method = _canonical_method(method)
        if "cell_id" not in (field.record_dtype.names or ()):
            raise ShardError(
                f"{type(field).__name__} records carry no 'cell_id' "
                f"column; the gather merge key requires one")
        self._init_protocol(field, type(field), method, cache_pages,
                            page_size, retry_policy, disk_backend,
                            remote_store, remote_cache_pages)

        dim = field.cell_centroids().shape[1]
        curve_obj = make_curve(curve, default_curve_order(field, dim), dim)
        coords = centroid_grid_coords(field.cell_centroids(),
                                      curve_obj.side, field.bounds)
        keys = np.asarray(curve_obj.indices(coords), dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        self._order = order
        self._inverse = np.empty(len(order), dtype=np.int64)
        self._inverse[order] = np.arange(len(order))
        self._sorted_keys = keys[order]
        quantum = max(1, (page_size - PAGE_HEADER_SIZE)
                      // field.record_dtype.itemsize)
        self.shard_map = build_shard_map(
            self._sorted_keys, n_shards, int(curve_obj.side) ** dim,
            curve_name=curve, curve_order=curve_obj.order, dim=dim,
            page_quantum=quantum)

        records = field.cell_records()
        global_groups = global_intervals = None
        self._grouping = None
        if method == "I-Hilbert":
            # One global §3.1.2 pass — identical inputs to the
            # unsharded IHilbertIndex build — then clip at the cuts.
            vmins = records["vmin"][order].astype(np.float64)
            vmaxs = records["vmax"][order].astype(np.float64)
            span = field.value_range.length
            self._grouping = CostBasedGrouping(
                unit=span if span > 0 else 1.0, avg_query=0.5 * span)
            global_groups = group_cells(vmins, vmaxs, self._grouping)
            global_intervals = [
                (float(vmins[s:e + 1].min()), float(vmaxs[s:e + 1].max()))
                for s, e in global_groups]

        self.shards: list[ShardRuntime] = []
        for spec in self.shard_map.shards:
            view = shard_field_view(field, spec,
                                    order[spec.start:spec.stop])
            groups = forced = None
            if method == "I-Hilbert":
                groups, forced = _clip_groups(
                    global_groups, global_intervals, spec.start, spec.stop)
            self.shards.append(self._make_runtime(view, spec,
                                                  groups=groups,
                                                  forced=forced))

        self._map_dir = Path(map_dir) if map_dir is not None else None
        if self._map_dir is not None:
            self._commit_map()

    # -- construction internals ---------------------------------------------

    def _init_protocol(self, field, field_type, method, cache_pages,
                       page_size, retry_policy, disk_backend,
                       remote_store, remote_cache_pages) -> None:
        """Set up the ``ValueIndex`` protocol surface by hand.

        Deliberately no ``super().__init__``: the coordinator owns no
        disk of its own — its ``store`` is an aggregate over the
        shards — but everything the query pipeline, batch engines, and
        facade touch (stats, tracer, fault mode, store/pool shims) is
        provided here.
        """
        self.field = field
        self.field_type = field_type
        self.method = method
        self.name = f"Sharded[{method}]"
        self.stats = IOStats()
        self.maint_stats = IOStats()
        self.wal = None
        self._updated = False
        self._stat_cache: dict[int, object] = {}
        self.tracer = NULL_TRACER
        self.page_size = page_size
        self.retry_policy = retry_policy
        self.disk_backend = disk_backend
        self.cache_pages = cache_pages
        self.remote_store = remote_store
        self.remote_cache_pages = remote_cache_pages
        self._fault_mode: FaultMode = "raise"
        self._query_faults = []
        self.shards = []
        self.store = _AggregateStore(self)
        self._gather_lock = threading.RLock()
        self._workers = None
        self._next_uid = 0
        self._map_dir = None
        self._wal_dir: Path | None = None
        self._injector = None
        self._order = None
        self._inverse = None
        self._sorted_keys = None
        self._grouping = None
        #: Per-shard IOStats deltas of the most recent gather — the
        #: bench derives the simulated scale-out speedup from these.
        self.last_shard_io: list[IOStats] = []

    def _shard_backend(self, uid: int):
        if self.remote_store is not None:
            return remote_backend(self.remote_store,
                                  self.remote_cache_pages,
                                  namespace=f"shard-{uid}")
        return self.disk_backend

    def _make_runtime(self, view, spec, *, groups=None,
                      forced=None) -> ShardRuntime:
        uid = self._next_uid
        self._next_uid += 1
        kwargs = dict(cache_pages=self.cache_pages,
                      page_size=self.page_size,
                      retry_policy=self.retry_policy,
                      disk_backend=self._shard_backend(uid))
        if self.method == "LinearScan":
            index = LinearScanIndex(view, **kwargs)
        elif self.method == "I-All":
            index = IAllIndex(view, **kwargs)
        else:
            if groups is None:
                recs = view.cell_records()
                groups = group_cells(recs["vmin"].astype(np.float64),
                                     recs["vmax"].astype(np.float64),
                                     self._grouping)
            index = _ShardGroupedIndex(
                view, np.arange(view.num_cells, dtype=np.int64), groups,
                forced_intervals=forced, grouping=self._grouping,
                **kwargs)
        # Estimation and persistence speak the real field type, not the
        # dynamically derived view type.
        index.field_type = self.field_type
        runtime = ShardRuntime(spec, uid, index)
        if self._injector is not None:
            index.inject_faults(self._injector)
        if self._wal_dir is not None:
            index.attach_wal(self._wal_dir / f"{runtime.name}.wal")
        return runtime

    def _commit_map(self, extra: dict | None = None) -> None:
        if self._map_dir is None:
            return
        payload = {"method": self.method,
                   "shards": [rt.name for rt in self.shards]}
        payload.update(extra or {})
        save_shard_map(self._map_dir, self.shard_map, extra=payload)

    # -- the scatter-gather filtering step -----------------------------------

    def _candidates(self, lo: float, hi: float) -> np.ndarray:
        with self._gather_lock:
            per_shard = []
            if self._workers is not None:
                chunks, deltas, faults = self._workers.fetch(
                    lo, hi, self._fault_mode)
                for delta in deltas:
                    self.stats += delta
                    per_shard.append(delta)
                self._query_faults.extend(faults)
            else:
                chunks = []
                with self.tracer.span("scatter",
                                      {"shards": len(self.shards)}):
                    for rt in self.shards:
                        chunks.append(
                            self._fetch_one(rt, lo, hi, per_shard))
            self.last_shard_io = per_shard
        merged = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if self.method == "I-Hilbert" or len(merged) < 2:
            # Shard concatenation already reproduces the clustered
            # (global Hilbert) candidate order.
            return merged
        # Cell-ordered methods emit ascending cell id when unsharded.
        return merged[np.argsort(merged["cell_id"], kind="stable")]

    def _fetch_one(self, rt: ShardRuntime, lo: float, hi: float,
                   per_shard: list) -> np.ndarray:
        """One shard's filtering step, bracketed like a batch group.

        The shard's own IOStats delta is folded into the coordinator's
        counters and its per-page faults into the coordinator's query
        fault list; a skip-mode shard degrades alone, it never poisons
        the gather.  The fold runs in a ``finally`` so the global
        counters stay truthful even when a raise-mode fault aborts
        the scatter midway.
        """
        index = rt.index
        index._fault_mode = self._fault_mode
        index._query_faults = []
        index.tracer = self.tracer   # shard spans nest under the gather
        before = index.stats.snapshot()
        try:
            return index._candidates(lo, hi)
        finally:
            delta = index.stats.diff(before)
            self.stats += delta
            per_shard.append(delta)
            self._query_faults.extend(index._query_faults)
            index._fault_mode = "raise"
            index._query_faults = []
            index.tracer = NULL_TRACER

    # -- process transport ---------------------------------------------------

    def start_workers(self) -> None:
        """Fork one worker process per shard for the scatter-gather.

        While workers are live the parent's shard copies are frozen:
        queries fan out over pipes (per-shard IOStats deltas stream
        back and fold into the coordinator), and mutating verbs —
        updates, compaction, rebalance — raise until
        :meth:`stop_workers`.
        """
        if self._workers is not None:
            raise ShardError("workers are already running")
        from .procs import ShardWorkerPool
        self._workers = ShardWorkerPool(self)

    def stop_workers(self) -> None:
        """Terminate the worker processes and resume in-process."""
        if self._workers is not None:
            self._workers.close()
            self._workers = None

    @contextmanager
    def workers(self):
        """``with engine.workers():`` — scoped multiprocessing fan-out."""
        self.start_workers()
        try:
            yield self
        finally:
            self.stop_workers()

    def _require_local(self, verb: str) -> None:
        if self._workers is not None:
            raise ShardError(
                f"{verb} requires in-process shards; call stop_workers() "
                f"(worker processes hold frozen copies)")

    # -- updates -------------------------------------------------------------

    def update_cells(self, cell_ids, records,
                     crash_point: str | None = None) -> None:
        """Route a global update batch to the owning shards.

        Validation and WAL discipline are per shard: each sub-batch is
        logged to the owning shard's WAL (local cell ids) before its
        pages are rewritten.  A simulated crash mid-routing leaves the
        already-routed shards durable and the rest untouched — exactly
        the partial-failure surface a distributed write has.
        """
        self._require_local("update_cells")
        cell_ids = np.asarray(cell_ids, dtype=np.int64).ravel()
        records = np.asarray(records, dtype=self.store.dtype).ravel()
        if len(cell_ids) != len(records):
            raise ValueError(
                f"{len(cell_ids)} cell ids vs {len(records)} records")
        if len(cell_ids) == 0:
            return
        n = len(self.store)
        if cell_ids.min() < 0 or cell_ids.max() >= n:
            raise IndexError(
                f"cell ids must lie in [0, {n}); got "
                f"[{cell_ids.min()}, {cell_ids.max()}]")
        positions = self._inverse[cell_ids]
        owners = self.shard_map.assign_positions(positions)
        for shard_id in np.unique(owners):
            rt = self.shards[shard_id]
            mask = owners == shard_id
            rt.index.update_cells(positions[mask] - rt.spec.start,
                                  records[mask], crash_point=crash_point)
        self._updated = True
        self._stat_cache.clear()

    def attach_wal(self, path, replay: bool = False) -> list:
        """Attach one write-ahead log per shard under directory ``path``.

        Returns the shard WALs (``shard-<uid>.wal`` each).  Rebalanced
        shards get fresh logs in the same directory.
        """
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        self._wal_dir = directory
        return [rt.index.attach_wal(directory / f"{rt.name}.wal",
                                    replay=replay)
                for rt in self.shards]

    # -- maintenance ---------------------------------------------------------

    def inject_faults(self, injector):
        """Attach one injector to every disk of every shard.

        The injector's per-op schedules count operations across the
        whole gather (shards run in shard order under the local
        transport), which keeps scheduled faults deterministic.
        """
        self._injector = injector
        for rt in self.shards:
            rt.index.inject_faults(injector)
        return injector

    def clear_caches(self) -> None:
        for rt in self.shards:
            rt.index.clear_caches()

    def compact(self, stale_threshold: float = 0.0) -> dict:
        """Run §3.1.2 compaction on every grouped shard."""
        self._require_local("compact")
        if self.method != "I-Hilbert":
            raise ShardError(
                f"{self.name} has no subfields to compact")
        shard_summaries = [rt.index.compact(stale_threshold)
                           for rt in self.shards]
        return {
            "shards": shard_summaries,
            "stale_subfields": sum(s["stale_subfields"]
                                   for s in shard_summaries),
            "reclustered_cells": sum(s["reclustered_cells"]
                                     for s in shard_summaries),
        }

    def aggregate(self, kind: str, lo: float, hi: float, *,
                  tolerance: float | None = None, mode: str = "hybrid"):
        """Scatter-gather range aggregate over the shards.

        COUNT/SUM/area are additive, so each grouped shard answers from
        its own learned models (the tolerance splits evenly across
        shards, which keeps the summed bound within the caller's) and
        the values and bounds sum.  AVG recombines from its COUNT and
        SUM parts; with a tolerance it routes to the exact path, since
        a ratio bound cannot be pre-split across shards.  Exact mode —
        and every mode on non-grouped shard methods — goes through the
        inherited candidate scatter.
        """
        from ..core.aggregate import (AggregateResult, _avg_bound,
                                      _validate)
        _validate(kind, lo, hi, mode, tolerance)
        if mode == "exact" or self.method != "I-Hilbert" or (
                kind == "avg" and mode == "hybrid"
                and tolerance is not None):
            return super().aggregate(kind, lo, hi, mode="exact")
        self._require_local("aggregate")
        per_kind = ("count", "sum") if kind == "avg" else (kind,)
        split = (tolerance / len(self.shards)
                 if tolerance is not None else None)
        totals = {k: 0.0 for k in per_kind}
        bounds = {k: 0.0 for k in per_kind}
        covered = model = exact = pages = 0
        with self._gather_lock, self.tracer.span(
                "aggregate", {"kind": kind, "shards": len(self.shards)}):
            for rt in self.shards:
                before = rt.index.stats.snapshot()
                try:
                    for k in per_kind:
                        r = rt.index.aggregate(k, lo, hi, tolerance=split,
                                               mode=mode)
                        totals[k] += r.value
                        bounds[k] += r.bound
                        covered += r.covered_subfields
                        model += r.model_subfields
                        exact += r.exact_subfields
                        pages += r.page_reads
                finally:
                    self.stats += rt.index.stats.diff(before)
        if kind == "avg":
            count, total = totals["count"], totals["sum"]
            value = total / count if count > 0 else 0.0
            bound = _avg_bound(count, bounds["count"],
                               total, bounds["sum"])
        else:
            value = totals[kind]
            bound = bounds[kind]
        return AggregateResult(
            kind=kind, lo=lo, hi=hi, value=float(value),
            bound=float(bound), mode=mode, tolerance=tolerance,
            covered_subfields=covered, model_subfields=model,
            exact_subfields=exact, page_reads=pages)

    def staleness(self, threshold: float = 0.0) -> dict:
        """Aggregate §3.1.2 drift over the shards (grouped method)."""
        if self.method != "I-Hilbert":
            return {"shards": len(self.shards), "max_drift": 0.0,
                    "per_shard": []}
        per_shard = [rt.index.staleness(threshold) for rt in self.shards]
        return {
            "shards": len(self.shards),
            "max_drift": max((s["max_drift"] for s in per_shard),
                             default=0.0),
            "stale_subfields": sum(s["stale_subfields"]
                                   for s in per_shard),
            "per_shard": per_shard,
        }

    def statistics(self, bins: int = 64):
        cached = self._stat_cache.get(bins)
        if cached is not None:
            return cached
        from ..core.statistics import FieldStatistics
        if self.field is not None and not self._updated:
            result = FieldStatistics.from_field(self.field, bins=bins)
        else:
            vmins, vmaxs = [], []
            self._require_local("statistics")
            for rt in self.shards:
                index = rt.index
                before = index.stats.snapshot()
                for page in index.store.scan():
                    vmins.append(page["vmin"].astype(np.float64))
                    vmaxs.append(page["vmax"].astype(np.float64))
                index.stats.restore(before)
                index.clear_caches()
            result = FieldStatistics.from_intervals(
                np.concatenate(vmins), np.concatenate(vmaxs), bins=bins)
        self._stat_cache[bins] = result
        return result

    # -- rebalancing ---------------------------------------------------------

    def rebalance(self, *, max_cells: int | None = None,
                  min_cells: int | None = None,
                  drift_threshold: float | None = None,
                  max_ops: int = 64) -> dict:
        """Split oversized/drifted shards, merge undersized neighbours.

        A shard splits when it holds more than ``max_cells`` cells or —
        for the grouped method — when its worst §3.1.2 cost drift
        exceeds ``drift_threshold`` (the split rebuilds both halves
        from the live records with a fresh local grouping, so drift
        resets; splitting *is* the distributed form of compaction).  A
        shard merges into its right neighbour when together they hold
        at most ``min_cells`` cells.  Every structural change
        re-commits the shard map atomically (when ``map_dir`` is set),
        so a crash leaves the previous generation readable.
        """
        self._require_local("rebalance")
        summary = {"shards_before": len(self.shards), "splits": 0,
                   "merges": 0, "shards_after": len(self.shards)}
        for _ in range(max_ops):
            if not (self._rebalance_split(max_cells, drift_threshold,
                                          summary)
                    or self._rebalance_merge(min_cells, summary)):
                break
        summary["shards_after"] = len(self.shards)
        return summary

    def _rebalance_split(self, max_cells, drift_threshold,
                         summary) -> bool:
        for k, rt in enumerate(self.shards):
            oversized = (max_cells is not None
                         and rt.spec.num_cells > max_cells)
            drifted = (drift_threshold is not None
                       and self.method == "I-Hilbert"
                       and rt.spec.num_cells >= 2
                       and rt.index.staleness()["max_drift"]
                       > drift_threshold)
            if (oversized or drifted) and self._split_shard(k):
                summary["splits"] += 1
                return True
        return False

    def _rebalance_merge(self, min_cells, summary) -> bool:
        if min_cells is None or len(self.shards) < 2:
            return False
        for k in range(len(self.shards) - 1):
            combined = (self.shards[k].spec.num_cells
                        + self.shards[k + 1].spec.num_cells)
            if combined <= min_cells:
                self._merge_shards(k)
                summary["merges"] += 1
                return True
        return False

    def _split_shard(self, k: int) -> bool:
        """Split shard ``k`` at its aligned midpoint; False if uncuttable."""
        if self._sorted_keys is None:
            raise ShardError(
                "rebalance splits need the Hilbert keys; engines "
                "reloaded without their field cannot split (merges "
                "still work)")
        rt = self.shards[k]
        spec = rt.spec
        local_keys = self._sorted_keys[spec.start:spec.stop]
        cut = aligned_cut(local_keys, spec.num_cells // 2,
                          self.shard_map.page_quantum)
        if cut is None:
            return False
        position = spec.start + cut
        new_map = self.shard_map.split(
            spec.shard_id, position, int(self._sorted_keys[position]))
        live = self._live_records(rt)
        left_rt = self._make_runtime(
            shard_field_view(self.field, new_map.shards[k],
                             self._order[spec.start:position],
                             records=live[:cut]),
            new_map.shards[k])
        right_rt = self._make_runtime(
            shard_field_view(self.field, new_map.shards[k + 1],
                             self._order[position:spec.stop],
                             records=live[cut:]),
            new_map.shards[k + 1])
        self._retire(rt)
        self.shards[k:k + 1] = [left_rt, right_rt]
        self._adopt_map(new_map)
        return True

    def _merge_shards(self, k: int) -> None:
        """Merge shard ``k`` with its right neighbour."""
        left, right = self.shards[k], self.shards[k + 1]
        new_map = self.shard_map.merge(left.spec.shard_id)
        spec = new_map.shards[k]
        live = np.concatenate([self._live_records(left),
                               self._live_records(right)])
        merged_rt = self._make_runtime(
            shard_field_view(self.field, spec,
                             self._order[spec.start:spec.stop],
                             records=live),
            spec)
        self._retire(left)
        self._retire(right)
        self.shards[k:k + 2] = [merged_rt]
        self._adopt_map(new_map)

    def _live_records(self, rt: ShardRuntime) -> np.ndarray:
        """Current records of a shard (updates included), charged to
        the shard's maintenance counters."""
        index = rt.index
        if len(index.store) == 0:
            return np.empty(0, dtype=index.store.dtype)
        with index._maintenance():
            records = np.array(
                index.store.read_range(0, len(index.store) - 1),
                copy=True)
        index.clear_caches()
        return records

    def _retire(self, rt: ShardRuntime) -> None:
        if rt.index.wal is not None:
            rt.index.wal.close()
        rt.facade.close_field(rt.name)

    def _adopt_map(self, new_map: ShardMap) -> None:
        self.shard_map = new_map
        for rt, spec in zip(self.shards, new_map.shards):
            rt.spec = spec
        self._stat_cache.clear()
        self._commit_map()

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist every shard plus the shard map, crash-safely.

        Each shard saves through :func:`~repro.core.persist.save_index`
        into ``shard-<uid>/`` (truncating its WAL); the shard-map
        commit — which also records the shard directory names — is the
        engine-level commit point, after which directories of retired
        shards are garbage-collected.  Only the grouped method has a
        persistent form (as with the unsharded engine).
        """
        self._require_local("save")
        if self.method != "I-Hilbert":
            raise ShardError(
                f"{self.name} has no persistent form; only grouped "
                f"shards snapshot")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for rt in self.shards:
            save_index(rt.index, directory / rt.name)
        save_shard_map(directory, self.shard_map, extra={
            "method": self.method,
            "shards": [rt.name for rt in self.shards],
            "uids": [rt.uid for rt in self.shards],
        })
        keep = {rt.name for rt in self.shards}
        for path in directory.glob("shard-*"):
            if path.is_dir() and path.name not in keep:
                for child in sorted(path.rglob("*"), reverse=True):
                    child.unlink() if child.is_file() else child.rmdir()
                path.rmdir()

    checkpoint = save

    @classmethod
    def load(cls, directory: str | Path, field: Field | None = None,
             cache_pages: int = 0) -> "ShardedEngine":
        """Reload a saved sharded engine (shard map + every shard).

        With ``field`` the full API returns (rebalance splits need the
        Hilbert keys); without it the engine still queries, updates,
        merges, and saves — the global order is recovered from the
        shards' ``cell_id`` columns via a rolled-back metadata scan.
        """
        directory = Path(directory)
        smap, extra = load_shard_map(directory)
        engine = cls.__new__(cls)
        engine._init_protocol(field, None, extra["method"], cache_pages,
                              PAGE_SIZE, None, "list", None, 64)
        engine.shard_map = smap
        engine._next_uid = max(extra["uids"]) + 1
        order_parts = []
        for spec, name, uid in zip(smap.shards, extra["shards"],
                                   extra["uids"]):
            index = load_index(directory / name, cache_pages=cache_pages)
            rt = ShardRuntime(spec, uid, index)
            engine.shards.append(rt)
            before = index.stats.snapshot()
            ids = np.concatenate([
                page["cell_id"].astype(np.int64)
                for page in index.store.scan()]) if len(index.store) \
                else np.empty(0, dtype=np.int64)
            index.stats.restore(before)
            index.clear_caches()
            order_parts.append(ids)
        engine._order = np.concatenate(order_parts)
        engine.field_type = engine.shards[0].index.field_type
        engine._inverse = np.empty(len(engine._order), dtype=np.int64)
        engine._inverse[engine._order] = np.arange(len(engine._order))
        engine.page_size = engine.shards[0].index.page_size
        if field is not None:
            dim = field.cell_centroids().shape[1]
            curve_obj = make_curve(smap.curve_name, smap.curve_order, dim)
            coords = centroid_grid_coords(field.cell_centroids(),
                                          curve_obj.side, field.bounds)
            keys = np.asarray(curve_obj.indices(coords), dtype=np.int64)
            engine._sorted_keys = keys[engine._order]
            span = field.value_range.length
        else:
            span = 1.0
        engine._grouping = CostBasedGrouping(
            unit=span if span > 0 else 1.0, avg_query=0.5 * span)
        engine._map_dir = directory
        engine._updated = True   # ground truth is the stores now
        return engine

    # -- introspection -------------------------------------------------------

    @property
    def data_pages(self) -> int:
        return sum(rt.index.data_pages for rt in self.shards)

    @property
    def index_pages(self) -> int:
        return sum(rt.index.index_pages for rt in self.shards)

    def describe(self) -> dict:
        return {
            "method": self.name,
            "shard_method": self.method,
            "cells": len(self.store),
            "data_pages": self.data_pages,
            "index_pages": self.index_pages,
            "shards": len(self.shards),
            "shard_cells": [rt.spec.num_cells for rt in self.shards],
            "curve": self.shard_map.curve_name,
            "curve_order": self.shard_map.curve_order,
            "page_quantum": self.shard_map.page_quantum,
            "tiered": self.remote_store is not None,
        }

    def shard_stats(self) -> list[dict]:
        """Each shard facade's serving statistics, in shard order."""
        self._require_local("shard_stats")
        return [rt.stats() for rt in self.shards]

    def remote_counters(self) -> dict:
        """Per-shard and total remote-tier traffic (tiered engines)."""
        per_shard = {}
        totals: dict[str, float] = {}
        for rt in self.shards:
            disks = [rt.index.data_disk]
            index_disk = getattr(rt.index, "index_disk", None)
            if index_disk is not None:
                disks.append(index_disk)
            counters: dict[str, float] = {}
            for disk in disks:
                if hasattr(disk, "remote_counters"):
                    for key, value in disk.remote_counters().items():
                        if key == "cache_pages":
                            counters[key] = value
                        else:
                            counters[key] = counters.get(key, 0) + value
            per_shard[rt.name] = counters
            for key, value in counters.items():
                if key != "cache_pages":
                    totals[key] = totals.get(key, 0) + value
        result = {"shards": per_shard, "total": totals}
        if self.remote_store is not None:
            result["store"] = self.remote_store.counters()
        return result


def _clip_groups(groups, intervals, start: int, stop: int):
    """Clip global (inclusive) groups to one shard's position range.

    Returns shard-local groups tiling ``[0, stop - start)`` and, for
    each, the parent group's global interval (the inherited hull).
    """
    local_groups, forced = [], []
    for (gs, ge), interval in zip(groups, intervals):
        if ge < start or gs >= stop:
            continue
        local_groups.append((max(gs, start) - start,
                             min(ge, stop - 1) - start))
        forced.append(interval)
    return local_groups, forced

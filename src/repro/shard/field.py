"""Per-shard field views.

A shard engine is an ordinary access method built over an ordinary
:class:`~repro.field.base.Field` — just one that exposes only the cells
the shard owns, *in the global Hilbert order*.  That single convention
buys the equivalence guarantees: concatenating the shards' clustered
files in shard order reproduces the unsharded clustered file byte for
byte (the cuts are page-aligned), and a shard-local storage position
``j`` always means global position ``spec.start + j``.

The view is a dynamically created subclass of the base field's type, so
``isinstance`` checks, record dtypes, and the classmethod geometry
helpers (``estimate_area``, ``record_mbrs``, …) all resolve to the real
field type — estimation over a shard's candidates is literally the same
code path as over the unsharded field's.
"""

from __future__ import annotations

import numpy as np

from ..field.base import Field
from ..geometry import Interval
from .shardmap import ShardSpec

_VIEW_TYPES: dict[type, type] = {}


def _view_type(base_type: type) -> type:
    """The (cached) ShardFieldView subclass for one base field type."""
    try:
        return _VIEW_TYPES[base_type]
    except KeyError:
        view_type = type(f"Sharded{base_type.__name__}",
                         (ShardFieldView, base_type), {})
        _VIEW_TYPES[base_type] = view_type
        return view_type


class ShardFieldView(Field):
    """One shard's slice of a field, in global Hilbert order.

    Local cell id ``j`` denotes the cell at global linearized position
    ``spec.start + j`` (global cell id ``global_ids[j]``).  Value
    geometry (``value_range``, ``bounds``) delegates to the *base*
    field, so anything derived from them — grid coordinates, Hilbert
    keys, the §3.1.2 cost-model parameters — is identical across
    shards and to the unsharded build.

    Never instantiate this class directly; use :func:`shard_field_view`,
    which subclasses the base field's type so estimation helpers
    resolve correctly.
    """

    def __init__(self, base: Field, spec: ShardSpec,
                 global_ids: np.ndarray,
                 records: np.ndarray | None = None) -> None:
        # Deliberately no super().__init__: the view holds no geometry
        # of its own, it re-exposes a slice of a fully built field.
        self.base = base
        self.spec = spec
        self.global_ids = np.asarray(global_ids, dtype=np.int64)
        if len(self.global_ids) != spec.num_cells:
            raise ValueError(
                f"shard {spec.shard_id} owns {spec.num_cells} cells but "
                f"got {len(self.global_ids)} global ids")
        if records is None:
            records = base.cell_records()[self.global_ids]
        elif len(records) != spec.num_cells:
            raise ValueError(
                f"shard {spec.shard_id} owns {spec.num_cells} cells but "
                f"got {len(records)} records")
        self._records = records

    # -- the shard's slice ---------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.global_ids)

    @property
    def record_dtype(self) -> np.dtype:
        """The base field's record dtype (shards never change layout)."""
        return self.base.record_dtype

    def cell_records(self) -> np.ndarray:
        """Shard records in global Hilbert order (``cell_id`` stays
        global — the coordinator's merge key)."""
        return self._records

    def cell_centroids(self) -> np.ndarray:
        return self.base.cell_centroids()[self.global_ids]

    def cell_interval(self, cell_id: int) -> Interval:
        rec = self._records[cell_id]
        return Interval(float(rec["vmin"]), float(rec["vmax"]))

    def locate_cell(self, *point: float) -> int | None:
        """Local id of the cell containing ``point``, if this shard
        owns it."""
        global_id = self.base.locate_cell(*point)
        if global_id is None:
            return None
        hits = np.flatnonzero(self.global_ids == global_id)
        return int(hits[0]) if len(hits) else None

    def value_at(self, *point: float) -> float:
        return self.base.value_at(*point)

    # -- delegated geometry (identical across shards) ------------------------

    @property
    def value_range(self) -> Interval:
        return self.base.value_range

    @property
    def bounds(self) -> tuple[float, ...]:
        return self.base.bounds

    def apply_updates(self, cell_ids: np.ndarray,
                      records: np.ndarray) -> None:
        raise NotImplementedError(
            "shard views are read-only; route updates through the "
            "sharded engine")


def shard_field_view(base: Field, spec: ShardSpec,
                     global_ids: np.ndarray,
                     records: np.ndarray | None = None) -> Field:
    """Build the shard view of ``base`` for one :class:`ShardSpec`.

    ``global_ids`` lists the owned global cell ids in global Hilbert
    order (``order[spec.start:spec.stop]``).  ``records`` optionally
    supplies the current cell records (e.g. read back from a live
    shard store during rebalancing) instead of the base field's
    pristine ones.
    """
    return _view_type(type(base))(base, spec, global_ids, records)

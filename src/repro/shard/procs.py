"""Multiprocessing transport for the scatter-gather filtering step.

One forked worker per shard.  Fork matters: the shard indexes —
numpy record stores, buffer pools, R*-trees — transfer to the children
as inherited memory, never pickled.  The parent scatters a query over
the pipes and gathers, per shard, the candidate bytes, the shard's
IOStats delta (folded into the coordinator's counters exactly as the
in-process transport folds them), and any survived page faults.

While a pool is live the parent's shard copies are frozen replicas:
the coordinator refuses mutating verbs until :meth:`ShardWorkerPool.close`,
because a child's writes would land in its private copy-on-write pages
and silently diverge from the parent.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import asdict

import numpy as np

from ..storage import IOStats, PageFault
from ..storage.codec import decode_records


class ShardWorkerPool:
    """Forked per-shard workers speaking a tiny scatter/gather protocol."""

    def __init__(self, engine) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:   # pragma: no cover - non-POSIX hosts
            raise RuntimeError(
                "shard workers need the fork start method") from exc
        self._procs: list = []
        self._conns: list = []
        self._dtypes: list[np.dtype] = []
        for rt in engine.shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, rt.index),
                               name=f"{rt.name}-worker", daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._dtypes.append(rt.index.store.dtype)

    def fetch(self, lo: float, hi: float, fault_mode: str):
        """Scatter one filtering step; gather (chunks, deltas, faults).

        The scatter is issued to every worker before any gather, so the
        shards genuinely overlap; results are gathered in shard order,
        which keeps the merge deterministic.
        """
        for conn in self._conns:
            conn.send(("fetch", float(lo), float(hi), fault_mode))
        chunks, deltas, faults = [], [], []
        failure = None
        for conn, dtype in zip(self._conns, self._dtypes):
            reply = conn.recv()
            if reply[0] == "ok":
                _, raw, delta_dict, fault_tuples = reply
                chunks.append(decode_records(raw, dtype))
                deltas.append(IOStats(**delta_dict))
                faults.extend(PageFault(*tup) for tup in fault_tuples)
            elif failure is None:
                failure = reply
        if failure is not None:
            from .engine import ShardError
            raise ShardError(
                f"shard worker failed: {failure[1]}: {failure[2]}")
        return chunks, deltas, faults

    def close(self) -> None:
        """Shut down the workers (graceful close, then terminate)."""
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():   # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)


def _worker_main(conn, index) -> None:
    """Worker loop: serve filtering steps for one inherited shard index."""
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request[0] == "close":
            break
        if request[0] != "fetch":   # pragma: no cover - protocol guard
            conn.send(("err", "ProtocolError", f"unknown {request[0]!r}"))
            continue
        _, lo, hi, fault_mode = request
        index._fault_mode = fault_mode
        index._query_faults = []
        before = index.stats.snapshot()
        try:
            records = index._candidates(lo, hi)
        except Exception as exc:   # typed errors flatten at the boundary
            conn.send(("err", type(exc).__name__, str(exc)))
            index._fault_mode = "raise"
            continue
        delta = index.stats.diff(before)
        faults = [(f.disk, f.page_id, f.kind, f.detail)
                  for f in index._query_faults]
        index._fault_mode = "raise"
        index._query_faults = []
        conn.send(("ok", np.ascontiguousarray(records).tobytes(),
                   asdict(delta), faults))
    conn.close()

"""Hilbert-range sharding with scatter-gather execution.

A field is partitioned into N shards by contiguous Hilbert-key range
(:mod:`~repro.shard.shardmap`); each shard is a full per-shard engine —
own WAL, compaction, IOStats, buffer pools — behind one coordinator
(:class:`~repro.shard.engine.ShardedEngine`) whose gathered answers are
byte-identical to the unsharded access method's.
"""

from .engine import (SHARD_METHODS, ShardError, ShardRuntime,
                     ShardedEngine)
from .field import ShardFieldView, shard_field_view
from .shardmap import (SHARD_MAP_FORMAT, ShardMap, ShardMapError,
                       ShardSpec, aligned_cut, build_shard_map,
                       load_shard_map, save_shard_map)

__all__ = [
    "SHARD_MAP_FORMAT",
    "SHARD_METHODS",
    "ShardError",
    "ShardFieldView",
    "ShardMap",
    "ShardMapError",
    "ShardRuntime",
    "ShardSpec",
    "ShardedEngine",
    "aligned_cut",
    "build_shard_map",
    "load_shard_map",
    "save_shard_map",
    "shard_field_view",
]

"""Shard map: partition of a field by contiguous Hilbert-key range.

The paper's linearization already lays every cell on one global
Hilbert-key axis (§3.1.1), so horizontal partitioning falls out of the
same machinery: cut the *sorted key sequence* into N contiguous ranges
and each shard owns a half-open key interval plus the matching slice of
the global clustered order.  The cuts obey two alignment rules that the
cross-shard equivalence matrix depends on:

* **page alignment** — cuts land on multiples of the page quantum
  (records per page), so the shards' clustered files partition the
  unsharded file's pages exactly and per-page accounting adds up;
* **key alignment** — a cut never separates cells with equal Hilbert
  keys (it slides forward to the next strict key increase), so shard
  ownership is expressible purely as key bounds.

The map is a tiny value object (:class:`ShardMap` of
:class:`ShardSpec` rows) with pure ``split``/``merge`` operations that
return new maps, and it persists with the same crash-safety idiom as
``core/persist.py`` manifests: payload under a fresh generation name,
SHA-256 recorded in ``shard-meta.json``, and an atomic
write-temp + fsync + rename as the commit point.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..storage.scrub import file_sha256
from ..storage.snapshot import fsync_dir

SHARD_MAP_FORMAT = 1
_META_NAME = "shard-meta.json"


class ShardMapError(ValueError):
    """A shard map violated the partition invariants."""


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a half-open Hilbert-key range and its order slice.

    ``[key_lo, key_hi)`` is the owned key interval; ``[start, stop)``
    is the matching slice of the global linearized cell order (global
    *positions*, not cell ids).
    """

    shard_id: int
    key_lo: int
    key_hi: int
    start: int
    stop: int

    @property
    def num_cells(self) -> int:
        """Cells this shard owns (global positions ``[start, stop)``)."""
        return self.stop - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation of this spec."""
        return {"shard_id": self.shard_id, "key_lo": self.key_lo,
                "key_hi": self.key_hi, "start": self.start,
                "stop": self.stop}


@dataclass(frozen=True)
class ShardMap:
    """Contiguous Hilbert-range partition of one field.

    Parameters
    ----------
    curve_name / curve_order / dim:
        The linearization that produced the keys — recorded so a
        reload can verify it recreates the same key space.
    n_cells:
        Total cells across all shards.
    key_space:
        Exclusive upper bound of the key axis (``side ** dim``).
    page_quantum:
        The records-per-page value the cuts were aligned to.
    shards:
        The partition, ascending by key range.
    """

    curve_name: str
    curve_order: int
    dim: int
    n_cells: int
    key_space: int
    page_quantum: int
    shards: tuple[ShardSpec, ...]

    def __post_init__(self) -> None:
        self.validate()

    # -- invariants ----------------------------------------------------------

    def validate(self) -> None:
        """Check the partition invariants; raise :class:`ShardMapError`.

        Every Hilbert key in ``[0, key_space)`` must fall in exactly
        one shard (key ranges are contiguous, half-open, and cover the
        keyspace) and the order slices must tile ``[0, n_cells)``.
        """
        if not self.shards:
            raise ShardMapError("a shard map needs at least one shard")
        if self.key_space <= 0:
            raise ShardMapError(
                f"key_space must be positive, got {self.key_space}")
        expected_key = 0
        expected_pos = 0
        for k, sh in enumerate(self.shards):
            if sh.shard_id != k:
                raise ShardMapError(
                    f"shard ids must be dense and ascending; slot {k} "
                    f"holds id {sh.shard_id}")
            if sh.key_lo != expected_key:
                raise ShardMapError(
                    f"shard {k}: key_lo {sh.key_lo} leaves a gap after "
                    f"{expected_key}")
            if sh.key_hi <= sh.key_lo:
                raise ShardMapError(
                    f"shard {k}: empty key range "
                    f"[{sh.key_lo}, {sh.key_hi})")
            if sh.start != expected_pos:
                raise ShardMapError(
                    f"shard {k}: order slice starts at {sh.start}, "
                    f"expected {expected_pos}")
            if sh.stop < sh.start:
                raise ShardMapError(
                    f"shard {k}: negative slice [{sh.start}, {sh.stop})")
            expected_key = sh.key_hi
            expected_pos = sh.stop
        if expected_key != self.key_space:
            raise ShardMapError(
                f"shards cover keys [0, {expected_key}) but the key "
                f"space is [0, {self.key_space})")
        if expected_pos != self.n_cells:
            raise ShardMapError(
                f"order slices cover [0, {expected_pos}) but the field "
                f"has {self.n_cells} cells")

    # -- lookup --------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards in the map."""
        return len(self.shards)

    @property
    def _bounds(self) -> np.ndarray:
        """Interior key boundaries (``key_hi`` of all but the last)."""
        return np.asarray([sh.key_hi for sh in self.shards[:-1]],
                          dtype=np.int64)

    def assign(self, keys: np.ndarray) -> np.ndarray:
        """Owning shard id for each Hilbert key (vectorized).

        Keys outside ``[0, key_space)`` raise — ownership must be
        total, never clamped silently.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.key_space):
            raise ShardMapError(
                f"keys outside the key space [0, {self.key_space})")
        return np.searchsorted(self._bounds, keys, side="right")

    def assign_positions(self, positions: np.ndarray) -> np.ndarray:
        """Owning shard id for global order positions (vectorized)."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (positions.min() < 0
                               or positions.max() >= self.n_cells):
            raise ShardMapError(
                f"positions outside [0, {self.n_cells})")
        stops = np.asarray([sh.stop for sh in self.shards[:-1]],
                           dtype=np.int64)
        return np.searchsorted(stops, positions, side="right")

    # -- rebalancing primitives ---------------------------------------------

    def split(self, shard_id: int, position: int,
              boundary_key: int) -> "ShardMap":
        """Split one shard at a global order position; returns a new map.

        ``boundary_key`` must be the Hilbert key of the cell *at*
        ``position`` (the first cell of the new right half) and must
        exceed the key of the cell before it — i.e. the cut sits on a
        strict key increase, which the caller establishes with
        :func:`aligned_cut`.
        """
        sh = self.shards[shard_id]
        if not sh.start < position < sh.stop:
            raise ShardMapError(
                f"split position {position} outside shard {shard_id}'s "
                f"open slice ({sh.start}, {sh.stop})")
        if not sh.key_lo < boundary_key < sh.key_hi:
            raise ShardMapError(
                f"boundary key {boundary_key} outside shard "
                f"{shard_id}'s open key range ({sh.key_lo}, {sh.key_hi})")
        left = ShardSpec(shard_id, sh.key_lo, boundary_key,
                         sh.start, position)
        right = ShardSpec(shard_id + 1, boundary_key, sh.key_hi,
                          position, sh.stop)
        shards = (self.shards[:shard_id] + (left, right)
                  + tuple(ShardSpec(s.shard_id + 1, s.key_lo, s.key_hi,
                                    s.start, s.stop)
                          for s in self.shards[shard_id + 1:]))
        return ShardMap(self.curve_name, self.curve_order, self.dim,
                        self.n_cells, self.key_space, self.page_quantum,
                        shards)

    def merge(self, shard_id: int) -> "ShardMap":
        """Merge one shard with its right neighbour; returns a new map."""
        if shard_id >= len(self.shards) - 1:
            raise ShardMapError(
                f"shard {shard_id} has no right neighbour to merge with")
        a = self.shards[shard_id]
        b = self.shards[shard_id + 1]
        merged = ShardSpec(shard_id, a.key_lo, b.key_hi, a.start, b.stop)
        shards = (self.shards[:shard_id] + (merged,)
                  + tuple(ShardSpec(s.shard_id - 1, s.key_lo, s.key_hi,
                                    s.start, s.stop)
                          for s in self.shards[shard_id + 2:]))
        return ShardMap(self.curve_name, self.curve_order, self.dim,
                        self.n_cells, self.key_space, self.page_quantum,
                        shards)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation (the persisted manifest body)."""
        return {"format": SHARD_MAP_FORMAT,
                "curve_name": self.curve_name,
                "curve_order": self.curve_order,
                "dim": self.dim,
                "n_cells": self.n_cells,
                "key_space": self.key_space,
                "page_quantum": self.page_quantum,
                "shards": [sh.to_dict() for sh in self.shards]}

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardMap":
        """Rebuild a map from :meth:`to_dict` output; validates it."""
        if doc.get("format") != SHARD_MAP_FORMAT:
            raise ShardMapError(
                f"unsupported shard-map format {doc.get('format')!r}")
        shards = tuple(
            ShardSpec(int(s["shard_id"]), int(s["key_lo"]),
                      int(s["key_hi"]), int(s["start"]), int(s["stop"]))
            for s in doc["shards"])
        return cls(str(doc["curve_name"]), int(doc["curve_order"]),
                   int(doc["dim"]), int(doc["n_cells"]),
                   int(doc["key_space"]), int(doc["page_quantum"]), shards)


# -- cut placement -----------------------------------------------------------

def aligned_cut(sorted_keys: np.ndarray, position: int,
                page_quantum: int = 1) -> int | None:
    """Slide a tentative cut forward until it is page- and key-aligned.

    Returns the smallest position ``>= position`` that is a multiple of
    ``page_quantum`` *and* sits on a strict key increase
    (``sorted_keys[p-1] < sorted_keys[p]``), or ``None`` when no such
    interior position exists before the end of the sequence.
    """
    n = len(sorted_keys)
    q = max(1, int(page_quantum))
    p = ((max(1, position) + q - 1) // q) * q
    while p < n and sorted_keys[p - 1] == sorted_keys[p]:
        p += q
    return p if 0 < p < n else None


def build_shard_map(sorted_keys: np.ndarray, n_shards: int,
                    key_space: int, *, curve_name: str, curve_order: int,
                    dim: int, page_quantum: int = 1) -> ShardMap:
    """Cut the sorted Hilbert-key sequence into ``n_shards`` ranges.

    Tentative cuts are placed at equal cell-count fractions, then
    aligned forward with :func:`aligned_cut`; cuts that collide after
    alignment collapse, so the result may hold fewer shards than
    requested (never more).  Key bounds are derived from the keys at
    the cuts, which the alignment rule guarantees is lossless.
    """
    sorted_keys = np.asarray(sorted_keys, dtype=np.int64)
    n = len(sorted_keys)
    if n == 0:
        raise ShardMapError("cannot shard an empty field")
    if n_shards < 1:
        raise ShardMapError(f"n_shards must be >= 1, got {n_shards}")
    if np.any(np.diff(sorted_keys) < 0):
        raise ShardMapError("keys must be sorted ascending")
    if sorted_keys[0] < 0 or sorted_keys[-1] >= key_space:
        raise ShardMapError(
            f"keys outside the key space [0, {key_space})")
    cuts: list[int] = []
    for i in range(1, n_shards):
        cut = aligned_cut(sorted_keys, (i * n + n_shards - 1) // n_shards,
                          page_quantum)
        if cut is not None and (not cuts or cut > cuts[-1]):
            cuts.append(cut)
    edges = [0] + cuts + [n]
    shards = []
    for k in range(len(edges) - 1):
        start, stop = edges[k], edges[k + 1]
        key_lo = 0 if k == 0 else int(sorted_keys[start])
        key_hi = (key_space if k == len(edges) - 2
                  else int(sorted_keys[stop]))
        shards.append(ShardSpec(k, key_lo, key_hi, start, stop))
    return ShardMap(curve_name, curve_order, dim, n, key_space,
                    max(1, int(page_quantum)), tuple(shards))


# -- persistence (the core/persist.py manifest idiom) -------------------------

def save_shard_map(directory: str | Path, smap: ShardMap,
                   extra: dict | None = None) -> int:
    """Commit a shard map (plus optional extra metadata) atomically.

    The map is serialized under a fresh generation name
    (``shard-map-<g>.json``), fsynced, and referenced — with its
    SHA-256 — from ``shard-meta.json``, whose write-temp + fsync +
    atomic rename is the commit point.  A crash at any step leaves the
    previous generation fully intact.  Returns the committed
    generation number.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _read_meta(directory)
    generation = (previous["generation"] + 1) if previous else 1
    map_name = f"shard-map-{generation}.json"
    payload = json.dumps(smap.to_dict(), indent=2, sort_keys=True)
    with open(directory / map_name, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    meta = {"format": SHARD_MAP_FORMAT,
            "generation": generation,
            "shard_map": {
                "name": map_name,
                "sha256": file_sha256(directory / map_name),
                "bytes": (directory / map_name).stat().st_size,
            },
            "num_shards": smap.num_shards,
            "extra": extra or {}}
    tmp = directory / (_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / _META_NAME)
    fsync_dir(directory)
    _collect_garbage(directory, keep={map_name, _META_NAME})
    return generation


def load_shard_map(directory: str | Path) -> tuple[ShardMap, dict]:
    """Load and verify the committed shard map; returns (map, extra).

    The referenced payload must exist, match its recorded size and
    SHA-256, and pass :meth:`ShardMap.validate` (which ``from_dict``
    runs implicitly).
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    if meta is None:
        raise ShardMapError(f"no committed shard map under {directory}")
    entry = meta["shard_map"]
    path = directory / entry["name"]
    if not path.exists():
        raise ShardMapError(f"shard-map payload {entry['name']} missing")
    if path.stat().st_size != entry["bytes"]:
        raise ShardMapError(
            f"shard-map payload {entry['name']} is "
            f"{path.stat().st_size} bytes, manifest says {entry['bytes']}")
    digest = file_sha256(path)
    if digest != entry["sha256"]:
        raise ShardMapError(
            f"shard-map payload {entry['name']} fails its checksum "
            f"({digest} != {entry['sha256']})")
    with open(path, encoding="utf-8") as fh:
        smap = ShardMap.from_dict(json.load(fh))
    return smap, meta.get("extra", {})


def _read_meta(directory: Path) -> dict | None:
    path = directory / _META_NAME
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _collect_garbage(directory: Path, keep: set[str]) -> None:
    for path in directory.glob("shard-map-*.json"):
        if path.name not in keep:
            path.unlink(missing_ok=True)

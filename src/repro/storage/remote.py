"""Tiered storage: a simulated object store behind a local page cache.

Production field databases outgrow one node's disk long before they
outgrow one node's CPU; the standard answer (Neon, Aurora, BigQuery) is
to demote cold pages to a cheap, slow, durable *object store* and keep a
bounded local cache of hot pages in front of it.  This module simulates
that tier with the same determinism discipline as the rest of the
storage layer:

* :class:`SimulatedObjectStore` — a latency-modeled key/value store of
  page frames.  Every ``get``/``put`` is counted and charged simulated
  milliseconds; transient fetch errors fire on an explicit operation
  schedule (so a failing run is exactly reproducible) and permanent
  damage is planted with :meth:`SimulatedObjectStore.corrupt`.
* :class:`RemoteDiskManager` — a :class:`~repro.storage.disk.DiskManager`
  whose authoritative copy lives in an object store.  Writes go through
  to the store; reads are served from a bounded LRU frame cache and
  fall back to an accounted *remote fetch* on a miss, evicting the
  least-recently-used frame when the cache is full.  Checksums are
  verified on every read exactly like the local backends, so bit rot in
  the remote tier surfaces as the same typed
  :class:`~repro.storage.faults.CorruptPageError`.
* :class:`RetryingRemoteDiskManager` — the same disk behind the shared
  :class:`~repro.storage.retry.RetryingReadMixin`, so transient fetch
  errors are retried with exponential backoff like any other transient
  fault.
* :func:`remote_backend` — binds a store + cache budget into a
  ``(plain, retrying)`` disk-class pair that plugs straight into
  :class:`~repro.core.base.ValueIndex`'s ``disk_backend`` parameter, so
  any access method can run over the remote tier unchanged.

Frames are namespaced (``namespace/file/page``), so many disks — e.g.
every shard of a sharded field — can share one store while their fetch
and eviction counters stay attributable per disk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable

from .disk import (DiskManager, PAGE_HEADER_SIZE, _FRAME, _FRAME_MAGIC,
                   CHECKSUM_ALGO, FRAME_VERSION, PAGE_SIZE, page_checksum,
                   parse_frame)
from .faults import CorruptPageError, PageError, TransientIOError
from .retry import RetryingReadMixin
from .stats import IOStats

#: Default simulated service times for one object-store round trip,
#: modeled on an intra-region object store (a few ms per GET, slightly
#: more per PUT) — one to two orders of magnitude slower than the local
#: sequential page read the cache saves.
REMOTE_GET_MS = 4.0
REMOTE_PUT_MS = 6.0


class RemoteFetchError(TransientIOError):
    """A remote GET failed transiently (timeout, throttle, 5xx).

    A :class:`~repro.storage.faults.TransientIOError`, so the shared
    retry machinery cures it; carries the object key for reports.
    """

    def __init__(self, disk: str, page_id: int, key: str) -> None:
        super().__init__(disk, page_id,
                         f"transient remote fetch error for {key!r}")
        self.key = key


class SimulatedObjectStore:
    """Deterministic in-memory object store for page frames.

    Parameters
    ----------
    get_ms / put_ms:
        Simulated service time charged per operation (accumulated in
        :attr:`simulated_ms`, never slept).
    fail_gets:
        0-based GET operation indices (counted across all keys) that
        raise :class:`RemoteFetchError` instead of returning data — the
        deterministic analogue of the fault injector's ``schedule``.
    """

    def __init__(self, get_ms: float = REMOTE_GET_MS,
                 put_ms: float = REMOTE_PUT_MS,
                 fail_gets: Iterable[int] | None = None) -> None:
        self.get_ms = float(get_ms)
        self.put_ms = float(put_ms)
        self._objects: dict[str, bytes] = {}
        self._fail_gets = set() if fail_gets is None else set(fail_gets)
        self.gets = 0
        self.puts = 0
        self.get_bytes = 0
        self.put_bytes = 0
        self.failed_gets = 0
        self.simulated_ms = 0.0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def fail_next_gets(self, schedule: Iterable[int],
                       relative: bool = True) -> None:
        """Arm transient failures at the given GET indices.

        With ``relative=True`` (default) the indices are counted from
        the *current* GET count, so ``fail_next_gets([0, 1])`` fails
        exactly the next two fetches regardless of history.
        """
        base = self.gets if relative else 0
        self._fail_gets.update(base + int(i) for i in schedule)

    def put(self, key: str, frame: bytes) -> None:
        """Store one object (an accounted, latency-charged PUT)."""
        with self._lock:
            self._objects[key] = bytes(frame)
            self.puts += 1
            self.put_bytes += len(frame)
            self.simulated_ms += self.put_ms

    def get(self, key: str, *, disk: str = "remote",
            page_id: int = -1) -> bytes:
        """Fetch one object (an accounted, latency-charged GET).

        ``disk``/``page_id`` only label the typed errors.  Raises
        :class:`RemoteFetchError` when this GET index is on the failure
        schedule (the failed round trip is still charged), and
        :class:`~repro.storage.faults.PageError` for a missing key.
        """
        with self._lock:
            op_index = self.gets
            self.gets += 1
            self.simulated_ms += self.get_ms
            if op_index in self._fail_gets:
                self.failed_gets += 1
                raise RemoteFetchError(disk, page_id, key)
            try:
                frame = self._objects[key]
            except KeyError:
                raise PageError(
                    f"{disk}: page {page_id}: no object {key!r} in the "
                    f"remote store") from None
            self.get_bytes += len(frame)
            return frame

    def delete(self, key: str) -> None:
        """Drop one object (idempotent)."""
        with self._lock:
            self._objects.pop(key, None)

    def corrupt(self, key: str, byte_index: int = 0, bit: int = 0) -> None:
        """Flip one payload bit of a stored frame (permanent bit rot).

        The frame header (checksum included) is left intact, so the
        next read of the page fails verification with a typed
        :class:`~repro.storage.faults.CorruptPageError` — retrying
        refetches the same rotten bytes, exactly like local rot.
        """
        with self._lock:
            frame = bytearray(self._objects[key])
            frame[PAGE_HEADER_SIZE + byte_index] ^= 1 << bit
            self._objects[key] = bytes(frame)

    def counters(self) -> dict:
        """JSON-safe snapshot of the store-wide traffic counters."""
        with self._lock:
            return {"objects": len(self._objects), "gets": self.gets,
                    "puts": self.puts, "get_bytes": self.get_bytes,
                    "put_bytes": self.put_bytes,
                    "failed_gets": self.failed_gets,
                    "simulated_ms": self.simulated_ms}


def _pack_frame(payload: bytes, crc: int, length: int) -> bytes:
    header = _FRAME.pack(_FRAME_MAGIC, FRAME_VERSION, CHECKSUM_ALGO,
                         length, crc)
    return header + payload


class RemoteDiskManager(DiskManager):
    """A page file whose authoritative copy lives in an object store.

    Writes are write-through: the full checksummed frame is PUT to the
    store and mirrored into a bounded local LRU frame cache.  Reads hit
    the local cache first; a miss performs an accounted *remote fetch*
    (latency-charged GET + frame parse + checksum verification) and
    admits the frame, evicting the least-recently-used one beyond
    ``cache_pages``.  Pages allocated but never written are sparse:
    they serve the zero payload without a round trip, like holes in an
    object-store layer file.

    I/O accounting is unchanged from the base class — a page read is a
    page read wherever the bytes came from — while the remote traffic
    lands in dedicated counters (:meth:`remote_counters`) so the tiering
    cost is visible separately.

    Parameters
    ----------
    store:
        The shared :class:`SimulatedObjectStore` holding cold frames.
    cache_pages:
        Local frame-cache capacity (0 = every read is a remote fetch).
    namespace:
        Key prefix isolating this disk's frames inside a shared store
        (e.g. ``"shard-3"``); keys are ``namespace/name/page_id``.
    """

    def __init__(self, stats: IOStats | None = None, name: str = "disk",
                 page_size: int = PAGE_SIZE,
                 near_window: int | None = None, *,
                 store: SimulatedObjectStore,
                 cache_pages: int = 64,
                 namespace: str = "") -> None:
        if cache_pages < 0:
            raise PageError(
                f"cache_pages must be >= 0, got {cache_pages}")
        self.store = store
        self.cache_pages = cache_pages
        self.namespace = namespace
        self.remote_fetches = 0
        self.remote_evictions = 0
        self.local_hits = 0
        self.remote_puts = 0
        self.fetch_ms = 0.0
        self.put_ms = 0.0
        super().__init__(stats=stats, name=name, page_size=page_size,
                         near_window=near_window)

    def _init_storage(self) -> None:
        #: page_id -> (payload, crc, length); insertion order = LRU.
        self._local: OrderedDict[int, tuple[bytes, int, int]] = \
            OrderedDict()
        self._written: set[int] = set()
        self._num = 0

    @property
    def num_pages(self) -> int:
        return self._num

    @property
    def resident_pages(self) -> int:
        """Frames currently held in the local cache."""
        return len(self._local)

    def _key(self, page_id: int) -> str:
        return f"{self.namespace}/{self.name}/{page_id}"

    def _append_pages(self, count: int) -> None:
        # Allocation is metadata-only: unwritten pages are sparse holes
        # served as zeros, so building a store does not PUT empty pages.
        self._num += count

    # -- read path ----------------------------------------------------------

    def _entry(self, page_id: int,
               accounted: bool = True) -> tuple[bytes, int, int]:
        """Frame cache entry for a page, fetching on a miss.

        ``accounted=False`` (snapshot/scrub plumbing) still performs
        the fetch but leaves the tiering counters alone.
        """
        entry = self._local.get(page_id)
        if entry is not None:
            self._local.move_to_end(page_id)
            if accounted:
                self.local_hits += 1
            return entry
        if page_id not in self._written:
            entry = (self._zero_payload, self._zero_crc, 0)
        else:
            frame = self.store.get(self._key(page_id), disk=self.name,
                                   page_id=page_id)
            if accounted:
                self.remote_fetches += 1
                self.fetch_ms += self.store.get_ms
            length, crc, payload = parse_frame(self.name, page_id, frame,
                                               self.page_size)
            entry = (payload, crc, length)
        self._admit(page_id, entry)
        return entry

    def _admit(self, page_id: int, entry: tuple[bytes, int, int]) -> None:
        if self.cache_pages == 0:
            return
        self._local[page_id] = entry
        self._local.move_to_end(page_id)
        while len(self._local) > self.cache_pages:
            self._local.popitem(last=False)
            self.remote_evictions += 1

    def _verified_payload(self, page_id: int) -> bytes:
        payload, crc, _ = self._entry(page_id)
        if page_checksum(payload) != crc:
            self._checksum_failed(page_id)
        return payload

    # -- write path ---------------------------------------------------------

    def _store_payload(self, page_id: int, data: bytes, crc: int,
                       length: int) -> None:
        self.store.put(self._key(page_id), _pack_frame(data, crc, length))
        self.remote_puts += 1
        self.put_ms += self.store.put_ms
        self._written.add(page_id)
        self._admit(page_id, (data, crc, length))

    # -- unaccounted plumbing (pool admission, snapshots, scrub) -------------

    def page_payload(self, page_id: int) -> bytes:
        self._check(page_id)
        return self._entry(page_id, accounted=False)[0]

    def frame_bytes(self, page_id: int) -> bytes:
        self._check(page_id)
        payload, crc, length = self._entry(page_id, accounted=False)
        return _pack_frame(payload, crc, length)

    def store_frame(self, page_id: int, frame: bytes,
                    verify: bool = True) -> None:
        self._check(page_id)
        length, crc, payload = parse_frame(self.name, page_id, frame,
                                           self.page_size)
        if verify and page_checksum(payload) != crc:
            raise CorruptPageError(self.name, page_id)
        self.store.put(self._key(page_id),
                       _pack_frame(payload, crc, length))
        self._written.add(page_id)
        self._admit(page_id, (payload, crc, length))

    def verify_page(self, page_id: int) -> bool:
        self._check(page_id)
        payload, crc, _ = self._entry(page_id, accounted=False)
        return page_checksum(payload) == crc

    def _flip_bit(self, page_id: int, byte_index: int, bit: int) -> None:
        # Corrupt the authoritative copy, so eviction cannot heal the
        # rot; the local mirror is dropped and re-fetched on next read.
        if page_id in self._written:
            self.store.corrupt(self._key(page_id), byte_index, bit)
        else:
            payload, _, length = self._entry(page_id, accounted=False)
            page = bytearray(payload)
            page[byte_index] ^= 1 << bit
            crc_entry = self._local[page_id][1]
            self.store.put(self._key(page_id),
                           _pack_frame(bytes(page), crc_entry, length))
            self._written.add(page_id)
        self._local.pop(page_id, None)

    # -- reporting -----------------------------------------------------------

    def remote_counters(self) -> dict:
        """JSON-safe tiering counters of this disk."""
        return {"fetches": self.remote_fetches,
                "evictions": self.remote_evictions,
                "local_hits": self.local_hits,
                "puts": self.remote_puts,
                "resident_pages": len(self._local),
                "cache_pages": self.cache_pages,
                "fetch_ms": self.fetch_ms,
                "put_ms": self.put_ms}


class RetryingRemoteDiskManager(RetryingReadMixin, RemoteDiskManager):
    """A :class:`RemoteDiskManager` whose reads survive transient
    fetch errors via the shared retry-with-backoff policy."""


def remote_backend(store: SimulatedObjectStore, cache_pages: int = 64,
                   namespace: str = "") -> tuple[type, type]:
    """Bind a store + cache budget into a ``disk_backend`` class pair.

    The result plugs into :class:`~repro.core.base.ValueIndex` (and
    therefore every access method) as ``disk_backend=remote_backend(
    store, cache_pages, namespace)``: each disk the index creates — the
    data file and, for indexed methods, the tree file — lives in the
    object store behind its own ``cache_pages``-frame local cache,
    keyed under ``namespace/<file>/<page>``.
    """

    class _BoundRemoteDisk(RemoteDiskManager):
        def __init__(self, **kwargs) -> None:
            super().__init__(store=store, cache_pages=cache_pages,
                             namespace=namespace, **kwargs)

    class _BoundRetryingRemoteDisk(RetryingRemoteDiskManager):
        def __init__(self, **kwargs) -> None:
            super().__init__(store=store, cache_pages=cache_pages,
                             namespace=namespace, **kwargs)

    _BoundRemoteDisk.__name__ = "RemoteDiskManager"
    _BoundRetryingRemoteDisk.__name__ = "RetryingRemoteDiskManager"
    return _BoundRemoteDisk, _BoundRetryingRemoteDisk

"""Fixed-size record files packed into pages.

A :class:`RecordStore` lays numpy-structured records onto consecutive pages
of a :class:`~repro.storage.disk.DiskManager`.  Record ids are dense
integers; ``rid // records_per_page`` is the page index inside the store.
The store is the physical substrate for cell tables (LinearScan reads it
front to back; I-Hilbert reads clustered rid ranges out of it).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .buffer import BufferPool
from .codec import decode_pages, decode_records
from .disk import DiskManager


class RecordStore:
    """Append-only file of fixed-size records.

    Parameters
    ----------
    disk:
        Backing page file.  Pages are allocated on demand, in order, so a
        store built in one burst is physically contiguous.
    dtype:
        numpy structured dtype describing one record.
    cache_pages:
        LRU buffer-pool capacity used for reads (0 = uncached).
    """

    def __init__(self, disk: DiskManager, dtype: np.dtype,
                 cache_pages: int = 0) -> None:
        self.disk = disk
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize > disk.usable_page_size:
            raise ValueError(
                f"record of {self.dtype.itemsize} bytes does not fit in "
                f"the {disk.usable_page_size} usable bytes of a "
                f"{disk.page_size}-byte page (frame header included)")
        # Capacity derives from the *usable* page size: the checksummed
        # frame header claims the first bytes of every page.
        self.records_per_page = disk.usable_page_size // self.dtype.itemsize
        self.pool = BufferPool(disk, capacity=cache_pages)
        self._page_ids: list[int] = []
        self._count = 0
        self._tail = np.empty(self.records_per_page, dtype=self.dtype)
        self._tail_len = 0
        self._tail_has_page = False

    def __len__(self) -> int:
        return self._count

    @property
    def num_pages(self) -> int:
        """Number of pages the store occupies (including a partial tail)."""
        return len(self._page_ids)

    @property
    def page_ids(self) -> tuple[int, ...]:
        """Physical page ids, in record order."""
        return tuple(self._page_ids)

    def append(self, record) -> int:
        """Append one record (tuple matching the dtype); return its rid."""
        self._tail[self._tail_len] = record
        self._tail_len += 1
        rid = self._count
        self._count += 1
        if self._tail_len == self.records_per_page:
            self._flush_tail()
        else:
            self._sync_partial_tail()
        return rid

    def extend(self, records: np.ndarray | Iterable) -> range:
        """Append many records; return the rid range they occupy."""
        arr = np.asarray(records, dtype=self.dtype)
        first = self._count
        for start in range(0, len(arr), self.records_per_page):
            chunk = arr[start:start + self.records_per_page]
            take = min(len(chunk), self.records_per_page - self._tail_len)
            self._tail[self._tail_len:self._tail_len + take] = chunk[:take]
            self._tail_len += take
            self._count += take
            if self._tail_len == self.records_per_page:
                self._flush_tail()
            rest = chunk[take:]
            if len(rest):
                self._tail[:len(rest)] = rest
                self._tail_len = len(rest)
                self._count += len(rest)
            self._sync_partial_tail()
        return range(first, self._count)

    def bulk_extend(self, records: np.ndarray | Iterable) -> range:
        """Append many records the bulk-load way; return their rid range.

        Byte-identical store layout to :meth:`extend` — same page ids,
        same page contents — but the full pages are allocated in one
        :meth:`DiskManager.allocate_many` call and written straight from
        slices of the input array, skipping the per-chunk tail-mirror
        copies.  A store whose tail page is partially filled falls back
        to :meth:`extend` (the bulk path only handles the page-aligned
        case, which is where bulk loading starts: an empty store).
        """
        arr = np.ascontiguousarray(np.asarray(records, dtype=self.dtype))
        if self._tail_len or not len(arr):
            return self.extend(arr)
        first = self._count
        rpp = self.records_per_page
        full, rem = divmod(len(arr), rpp)
        if full:
            first_page = self.disk.allocate_many(full)
            write = self.disk.write
            for k in range(full):
                write(first_page + k, arr[k * rpp:(k + 1) * rpp].tobytes())
            self._page_ids.extend(range(first_page, first_page + full))
            self._count += full * rpp
        if rem:
            self._tail[:rem] = arr[full * rpp:]
            self._tail_len = rem
            self._count += rem
            self._sync_partial_tail()
        return range(first, self._count)

    def update(self, rid: int, record) -> None:
        """Overwrite one record in place (read-modify-write of its page)."""
        self._check_rid(rid)
        page_no, slot = divmod(rid, self.records_per_page)
        current = np.array(self.read_page(page_no))
        current[slot] = record
        self.disk.write(self._page_ids[page_no], current.tobytes())
        # Keep the in-memory tail mirror coherent for later appends.
        if self._tail_has_page and page_no == len(self._page_ids) - 1:
            self._tail[:self._tail_len] = current
        # Only the written page's cached frame is stale; evicting the
        # whole pool would cold-start every other reader (and the batch
        # engine's cross-query cache) on each single-record update.
        self.pool.invalidate(self._page_ids[page_no])

    def get(self, rid: int) -> np.void:
        """Read a single record by id (one accounted page read)."""
        self._check_rid(rid)
        page_no, slot = divmod(rid, self.records_per_page)
        return self.read_page(page_no)[slot]

    def read_page(self, page_no: int) -> np.ndarray:
        """Return the records of one store page as a structured array."""
        if not 0 <= page_no < len(self._page_ids):
            raise IndexError(
                f"page {page_no} out of range (store has "
                f"{len(self._page_ids)} pages)")
        raw = self.pool.read(self._page_ids[page_no])
        n = self._records_on_page(page_no)
        return decode_records(raw, self.dtype, n)

    def read_pages(self, first_page: int, last_page: int) -> np.ndarray:
        """Decode a contiguous page run into one structured array.

        Inclusive on both ends.  The pages are fetched as one batch
        (:meth:`BufferPool.read_many`) with accounting identical to a
        serial :meth:`read_page` loop, then decoded in one pass by the
        shared codec — the vectorized query path's bulk fetch.
        """
        if first_page > last_page:
            return np.empty(0, dtype=self.dtype)
        for p in (first_page, last_page):
            if not 0 <= p < len(self._page_ids):
                raise IndexError(
                    f"page {p} out of range (store has "
                    f"{len(self._page_ids)} pages)")
        ids = self._page_ids[first_page:last_page + 1]
        payloads = self.pool.read_many(ids)
        counts = [self._records_on_page(p)
                  for p in range(first_page, last_page + 1)]
        return decode_pages(payloads, self.dtype, counts)

    def scan(self) -> Iterator[np.ndarray]:
        """Yield every page's records, front to back (sequential reads)."""
        for page_no in range(len(self._page_ids)):
            yield self.read_page(page_no)

    def read_range(self, rid_start: int, rid_end: int) -> np.ndarray:
        """Read records with ``rid_start <= rid <= rid_end`` (inclusive).

        The underlying pages are fetched in order, so a clustered range
        costs one random seek plus sequential reads — the access pattern
        subfields are designed to exploit.
        """
        if rid_start > rid_end:
            return np.empty(0, dtype=self.dtype)
        self._check_rid(rid_start)
        self._check_rid(rid_end)
        rpp = self.records_per_page
        first_page = rid_start // rpp
        last_page = rid_end // rpp
        parts = []
        for p in range(first_page, last_page + 1):
            page = self.read_page(p)
            # Trim the partial first/last pages *before* concatenating,
            # so a mid-page range never copies records it will discard.
            lo = rid_start - p * rpp if p == first_page else 0
            hi = rid_end - p * rpp + 1 if p == last_page else len(page)
            parts.append(page[lo:hi])
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def read_page_set(self, page_nos) -> tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """Fetch a set of store pages as one concatenated array.

        ``page_nos`` may repeat and is reduced to its sorted unique
        pages, which are fetched as one batch (same accounting as a
        serial ascending page loop).  Returns ``(records, unique_pages,
        offsets)``: ``records[offsets[i]:]`` starts the records of page
        ``unique_pages[i]``, so callers can gather arbitrary slots with
        ``records[offsets[searchsorted(unique_pages, page)] + slot]``.
        """
        upages = np.unique(np.asarray(page_nos, dtype=np.int64))
        if len(upages) and not (
                0 <= upages[0] and upages[-1] < len(self._page_ids)):
            raise IndexError(
                f"page {upages[0] if upages[0] < 0 else upages[-1]} out "
                f"of range (store has {len(self._page_ids)} pages)")
        ids = [self._page_ids[p] for p in upages.tolist()]
        payloads = self.pool.read_many(ids)
        counts = np.array([self._records_on_page(p)
                           for p in upages.tolist()], dtype=np.int64)
        records = decode_pages(payloads, self.dtype, counts.tolist())
        offsets = np.zeros(len(upages), dtype=np.int64)
        if len(counts) > 1:
            np.cumsum(counts[:-1], out=offsets[1:])
        return records, upages, offsets

    def _records_on_page(self, page_no: int) -> int:
        if page_no == len(self._page_ids) - 1:
            last = self._count - page_no * self.records_per_page
            return last
        return self.records_per_page

    def _flush_tail(self) -> None:
        if not self._tail_has_page:
            self._page_ids.append(self.disk.allocate())
        self.disk.write(self._page_ids[-1], self._tail.tobytes())
        self._tail_len = 0
        self._tail_has_page = False

    def _sync_partial_tail(self) -> None:
        if not self._tail_len:
            return
        if not self._tail_has_page:
            self._page_ids.append(self.disk.allocate())
            self._tail_has_page = True
        self.disk.write(self._page_ids[-1],
                        self._tail[:self._tail_len].tobytes())

    def _check_rid(self, rid: int) -> None:
        if not 0 <= rid < self._count:
            raise IndexError(
                f"rid {rid} out of range (store holds {self._count} records)")

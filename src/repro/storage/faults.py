"""Typed storage failures and deterministic fault injection.

The simulated disk never fails on its own; production disks do.  This
module defines the failure taxonomy every storage layer raises —
:class:`TransientIOError` for faults a retry can cure,
:class:`CorruptPageError` for permanent damage a checksum catches — and
a seedable :class:`FaultInjector` that makes the simulated disk fail on
purpose: transient read errors, torn (partial) page writes, bit rot,
and added latency, targeted by page id, probability, or an explicit
operation schedule.  Every decision is drawn from one ``random.Random``
seed, so a failing run is exactly reproducible: same seed, same fault
sites, same outcome.

The injector is attached to a :class:`~repro.storage.disk.DiskManager`
via its ``fault_injector`` attribute; with no injector attached the
disk's hot path pays a single ``is None`` check and nothing else.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field


class PageError(Exception):
    """Base error of the paged-storage layer (bad ids, bad payloads)."""


class TransientIOError(PageError):
    """A read failed for a reason a retry can cure (timeout, bus reset).

    Carries the file name and page id so retry layers and reports can
    say *which* read failed.
    """

    def __init__(self, disk: str, page_id: int,
                 detail: str = "injected transient read error") -> None:
        super().__init__(f"{disk}: page {page_id}: {detail}")
        self.disk = disk
        self.page_id = page_id


class CorruptPageError(PageError):
    """A page's checksum does not match its contents (permanent fault).

    Retrying cannot help: the stored bytes themselves are damaged (bit
    rot, torn write).  The page must be rewritten or restored from a
    snapshot.
    """

    def __init__(self, disk: str, page_id: int,
                 detail: str = "checksum mismatch") -> None:
        super().__init__(f"{disk}: page {page_id}: {detail}")
        self.disk = disk
        self.page_id = page_id


class SimulatedCrash(RuntimeError):
    """Raised by persistence code at a named crash point (tests only).

    Crash-recovery tests pass ``crash_point=<name>`` to
    :func:`~repro.storage.snapshot.save_disk` /
    :func:`~repro.core.persist.save_index`; the writer stops dead at
    that point, leaving the filesystem exactly as a process kill would.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


@dataclass(frozen=True)
class PageFault:
    """One storage fault observed (and survived) during a query."""

    disk: str
    page_id: int
    kind: str
    detail: str


#: Fault kinds the injector understands, and the operation they hit.
FAULT_KINDS = {
    "read_error": "read",    # transient: raise TransientIOError
    "bit_flip": "read",      # permanent: flip one stored bit (bit rot)
    "torn_write": "write",   # permanent: only a prefix of the frame lands
    "latency": "read",       # accounted delay, no failure
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection rule.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance the rule fires on a matching operation (rolled from the
        injector's seeded RNG, so runs are reproducible).
    page_ids:
        Restrict the rule to these page ids (``None`` = any page).
    schedule:
        Restrict the rule to these 0-based operation indices, counted
        per operation type (read/write) across all disks sharing the
        injector.  ``None`` = every operation.  A scheduled rule with
        ``probability=1.0`` fires at exactly those operations.
    max_faults:
        Stop firing after this many injections (``None`` = unlimited).
    latency_ms:
        Simulated delay added per fire (``kind="latency"`` only).
    """

    kind: str
    probability: float = 1.0
    page_ids: frozenset | None = None
    schedule: frozenset | None = None
    max_faults: int | None = None
    latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")

    def matches(self, op: str, op_index: int, page_id: int) -> bool:
        """Whether this rule applies to the given operation."""
        if FAULT_KINDS[self.kind] != op:
            return False
        if self.page_ids is not None and page_id not in self.page_ids:
            return False
        if self.schedule is not None and op_index not in self.schedule:
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """A record of one injected fault (for determinism assertions)."""

    op_index: int
    kind: str
    disk: str
    page_id: int


@dataclass
class FaultInjector:
    """Deterministic fault-injection policy over one or more disks.

    Attach with ``disk.fault_injector = injector`` (or
    :meth:`~repro.core.base.ValueIndex.inject_faults` to cover an
    index's data and index files at once).  All randomness comes from
    ``random.Random(seed)``, consumed in a fixed order per operation,
    so the full fault sequence is a pure function of the seed and the
    operation stream.

    The fired-fault log is kept in :attr:`events`; total simulated
    latency in :attr:`injected_latency_ms`.
    """

    seed: int = 0
    specs: list = field(default_factory=list)
    events: list = field(default_factory=list)
    injected_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._op_counts = {"read": 0, "write": 0}
        self._fired = [0] * len(self.specs)

    def add(self, kind: str, probability: float = 1.0,
            page_ids: Iterable[int] | None = None,
            schedule: Iterable[int] | None = None,
            max_faults: int | None = None,
            latency_ms: float = 0.0) -> FaultSpec:
        """Register one rule; returns the immutable spec."""
        spec = FaultSpec(
            kind=kind, probability=probability,
            page_ids=None if page_ids is None else frozenset(page_ids),
            schedule=None if schedule is None else frozenset(schedule),
            max_faults=max_faults, latency_ms=latency_ms)
        self.specs.append(spec)
        self._fired.append(0)
        return spec

    # -- hooks called by DiskManager ----------------------------------------

    def on_read(self, disk, page_id: int) -> None:
        """Consulted once per accounted read, before verification.

        May raise :class:`TransientIOError`, flip a stored bit (so the
        disk's own checksum verification raises
        :class:`CorruptPageError`), or add simulated latency.
        """
        op_index = self._op_counts["read"]
        self._op_counts["read"] += 1
        for i, spec in enumerate(self.specs):
            if not self._fires(i, spec, "read", op_index, page_id):
                continue
            self._record(op_index, spec.kind, disk.name, page_id)
            if spec.kind == "latency":
                self.injected_latency_ms += spec.latency_ms
            elif spec.kind == "bit_flip":
                byte = self._rng.randrange(disk.usable_page_size)
                bit = self._rng.randrange(8)
                disk._flip_bit(page_id, byte, bit)
            elif spec.kind == "read_error":
                raise TransientIOError(disk.name, page_id)

    def on_write(self, disk, page_id: int, payload: bytes,
                 crc: int) -> tuple[bytes, int]:
        """Consulted once per write; returns the bytes that truly land.

        A torn write stores the *new* header (checksum included) but
        only a prefix of the new payload — the stored page then fails
        verification on the next read, exactly like a real partial
        sector write after power loss.
        """
        op_index = self._op_counts["write"]
        self._op_counts["write"] += 1
        for i, spec in enumerate(self.specs):
            if spec.kind != "torn_write":
                continue
            if not self._fires(i, spec, "write", op_index, page_id):
                continue
            self._record(op_index, spec.kind, disk.name, page_id)
            old = bytes(disk.page_payload(page_id))
            tear = self._rng.randrange(1, len(payload))
            torn = payload[:tear] + old[tear:]
            if torn != payload:
                return torn, crc
        return payload, crc

    # -- internals ----------------------------------------------------------

    def _fires(self, i: int, spec: FaultSpec, op: str, op_index: int,
               page_id: int) -> bool:
        if not spec.matches(op, op_index, page_id):
            return False
        if spec.max_faults is not None and self._fired[i] >= spec.max_faults:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        self._fired[i] += 1
        return True

    def _record(self, op_index: int, kind: str, disk: str,
                page_id: int) -> None:
        self.events.append(FaultEvent(op_index, kind, disk, page_id))

"""Checksummed write-ahead log for live cell updates.

In-place record updates are not atomic: a crash between the page
rewrite and the index-structure maintenance (subfield interval
migration, R*-tree delete+insert) would leave the two permanently
disagreeing.  The WAL makes the *logical* update durable first: an
update batch — ``(cell_id, record)`` pairs — is appended to the log and
fsynced before any page is touched, and only then is it acknowledged.
Recovery replays pending batches on top of the last checkpoint
(:func:`~repro.core.persist.save_index` is the checkpoint: once a save
commits, the log is truncated), re-running the same deterministic
maintenance path the live update took.

Records are **logical**, not physical pages, for a reason: replaying a
page image would restore the cell file but leave the manifest's
subfield list and the R*-tree stale.  Replaying the batch through
``update_cells`` regenerates all three consistently.

On-disk layout::

    file header   8-byte magic + version (16 bytes total)
    record*       20-byte header (magic, payload bytes, CRC-32, LSN)
                  followed by the payload:
                    u32 record size, u32 count,
                    count x u64 cell id, count x record bytes

A torn tail — the file ends mid-record, the signature of a crash during
an append — is discarded on open (the batch was never acknowledged).  A
CRC mismatch over a *fully present* record cannot be produced by a torn
append-only write and is reported as corruption
(:class:`WalError`) instead of being silently dropped.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .faults import SimulatedCrash

#: File magic: identifies a repro WAL, version 1.
_FILE_MAGIC = b"RPROWAL1"
_FILE_HEADER = struct.Struct("<8sII")       # magic, version, reserved
_VERSION = 1

_REC_MAGIC = b"WREC"
_REC_HEADER = struct.Struct("<4sIIQ")       # magic, payload_len, crc32, lsn
_PAYLOAD_HEADER = struct.Struct("<II")      # record_size, count

#: Crash points honoured by :meth:`WriteAheadLog.append`, in order.
#: ``pre-append`` crashes before any byte is written; ``torn-append``
#: writes half the record then crashes (the torn-tail case recovery
#: must discard); ``pre-sync`` crashes after the write but before the
#: fsync (not yet acknowledged); ``post-append`` crashes after the
#: fsync — the batch *is* acknowledged and must survive replay.
WAL_CRASH_POINTS = ("pre-append", "torn-append", "pre-sync", "post-append")


class WalError(Exception):
    """Raised for a structurally corrupt write-ahead log."""


@dataclass(frozen=True)
class WalBatch:
    """One durable update batch: parallel cell ids and record bytes."""

    lsn: int
    cell_ids: np.ndarray
    record_size: int
    payload: bytes

    @property
    def count(self) -> int:
        """Number of cell updates in the batch."""
        return len(self.cell_ids)

    def decode(self, dtype: np.dtype) -> np.ndarray:
        """Records of the batch as a structured array of ``dtype``."""
        dtype = np.dtype(dtype)
        if dtype.itemsize != self.record_size:
            raise WalError(
                f"WAL batch lsn={self.lsn} holds {self.record_size}-byte "
                f"records, store dtype is {dtype.itemsize} bytes")
        return np.frombuffer(self.payload, dtype=dtype,
                             count=len(self.cell_ids))


@dataclass(frozen=True)
class WalScan:
    """Outcome of a read-only log scan (what ``scrub`` reports)."""

    batches: tuple
    total_bytes: int
    valid_bytes: int
    #: ``None`` when clean; otherwise why the scan stopped.
    error: str | None = None
    #: True when the invalid suffix is a torn tail (crash during an
    #: append — expected, recoverable); False means real corruption.
    torn_tail: bool = False


def _encode_batch(lsn: int, cell_ids: np.ndarray,
                  records: np.ndarray) -> bytes:
    payload = (_PAYLOAD_HEADER.pack(records.dtype.itemsize, len(cell_ids))
               + cell_ids.astype("<u8").tobytes()
               + records.tobytes())
    header = _REC_HEADER.pack(_REC_MAGIC, len(payload),
                              zlib.crc32(payload) & 0xFFFFFFFF, lsn)
    return header + payload


def _decode_payload(lsn: int, payload: bytes) -> WalBatch:
    record_size, count = _PAYLOAD_HEADER.unpack_from(payload)
    ids_end = _PAYLOAD_HEADER.size + 8 * count
    expected = ids_end + record_size * count
    if expected != len(payload):
        raise WalError(
            f"WAL batch lsn={lsn}: payload is {len(payload)} bytes, "
            f"header implies {expected}")
    cell_ids = np.frombuffer(payload, dtype="<u8", count=count,
                             offset=_PAYLOAD_HEADER.size).astype(np.int64)
    return WalBatch(lsn=lsn, cell_ids=cell_ids, record_size=record_size,
                    payload=payload[ids_end:])


def scan_wal(path: str | Path) -> WalScan:
    """Read-only scan of a log file; never modifies it.

    Classifies the tail: a file ending mid-record is a *torn tail*
    (normal crash signature); a CRC mismatch over fully present bytes
    is corruption.
    """
    path = Path(path)
    data = path.read_bytes()
    total = len(data)
    if total < _FILE_HEADER.size:
        return WalScan(batches=(), total_bytes=total, valid_bytes=0,
                       error="file shorter than the WAL header",
                       torn_tail=False)
    magic, version, _ = _FILE_HEADER.unpack_from(data)
    if magic != _FILE_MAGIC:
        return WalScan(batches=(), total_bytes=total, valid_bytes=0,
                       error="bad file magic — not a repro WAL",
                       torn_tail=False)
    if version != _VERSION:
        return WalScan(batches=(), total_bytes=total, valid_bytes=0,
                       error=f"unsupported WAL version {version}",
                       torn_tail=False)
    batches = []
    offset = _FILE_HEADER.size
    while offset < total:
        if offset + _REC_HEADER.size > total:
            return WalScan(tuple(batches), total, offset,
                           error=f"torn tail: {total - offset} trailing "
                                 f"bytes end mid-header",
                           torn_tail=True)
        magic, payload_len, crc, lsn = _REC_HEADER.unpack_from(data, offset)
        body_start = offset + _REC_HEADER.size
        if magic != _REC_MAGIC:
            return WalScan(tuple(batches), total, offset,
                           error=f"bad record magic at byte {offset}",
                           torn_tail=False)
        if body_start + payload_len > total:
            return WalScan(tuple(batches), total, offset,
                           error=f"torn tail: record at byte {offset} "
                                 f"declares {payload_len} payload bytes, "
                                 f"{total - body_start} remain",
                           torn_tail=True)
        payload = data[body_start:body_start + payload_len]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return WalScan(tuple(batches), total, offset,
                           error=f"CRC mismatch in record lsn={lsn} "
                                 f"at byte {offset}",
                           torn_tail=False)
        try:
            batches.append(_decode_payload(lsn, payload))
        except WalError as exc:
            return WalScan(tuple(batches), total, offset,
                           error=str(exc), torn_tail=False)
        offset = body_start + payload_len
    return WalScan(tuple(batches), total, offset, error=None)


class WriteAheadLog:
    """Append-only, checksummed update log with group fsync.

    Parameters
    ----------
    path:
        Log file, created (with its header) if absent.  Opening an
        existing log scans it: complete, checksummed batches become
        :attr:`pending`; a torn tail is truncated away (its batch was
        never acknowledged); CRC damage over complete records raises
        :class:`WalError`.
    fsync:
        When True (default) every append fsyncs before returning —
        the acknowledgment point of the update protocol.  Tests may
        disable it for speed; durability claims then void.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.torn_tail_discarded = 0
        if not self.path.exists():
            with open(self.path, "wb") as fh:
                fh.write(_FILE_HEADER.pack(_FILE_MAGIC, _VERSION, 0))
                fh.flush()
                os.fsync(fh.fileno())
            self._pending: list[WalBatch] = []
            self._next_lsn = 0
        else:
            scan = scan_wal(self.path)
            if scan.error is not None and not scan.torn_tail:
                raise WalError(f"{self.path}: {scan.error}")
            self._pending = list(scan.batches)
            self._next_lsn = (self._pending[-1].lsn + 1
                              if self._pending else 0)
            if scan.error is not None:       # torn tail: discard it
                self.torn_tail_discarded = scan.total_bytes - scan.valid_bytes
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        self._fh = open(self.path, "r+b")
        self._fh.seek(0, os.SEEK_END)

    # -- introspection ----------------------------------------------------

    @property
    def pending(self) -> tuple[WalBatch, ...]:
        """Acknowledged batches not yet covered by a checkpoint."""
        return tuple(self._pending)

    @property
    def last_lsn(self) -> int | None:
        """LSN of the newest pending batch (None when empty)."""
        return self._pending[-1].lsn if self._pending else None

    def __len__(self) -> int:
        return len(self._pending)

    # -- the protocol ------------------------------------------------------

    def append(self, cell_ids, records, crash_point: str | None = None) -> int:
        """Make one update batch durable; returns its LSN.

        The batch is acknowledged — guaranteed to survive a crash —
        only once this method returns.  ``crash_point`` (tests only)
        aborts with :class:`~repro.storage.faults.SimulatedCrash` at a
        named step of :data:`WAL_CRASH_POINTS`.
        """
        if crash_point is not None and crash_point not in WAL_CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {crash_point!r}; expected one of "
                f"{WAL_CRASH_POINTS}")
        cell_ids = np.asarray(cell_ids, dtype=np.int64).ravel()
        records = np.asarray(records)
        if records.dtype.names is None:
            raise TypeError("records must be a structured array")
        if len(cell_ids) != len(records):
            raise ValueError(
                f"{len(cell_ids)} cell ids vs {len(records)} records")
        if crash_point == "pre-append":
            raise SimulatedCrash("pre-append")
        lsn = self._next_lsn
        encoded = _encode_batch(lsn, cell_ids, records)
        if crash_point == "torn-append":
            # Half the record reaches the platter, then the power goes.
            self._fh.write(encoded[:len(encoded) // 2])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise SimulatedCrash("torn-append")
        self._fh.write(encoded)
        self._fh.flush()
        if crash_point == "pre-sync":
            raise SimulatedCrash("pre-sync")
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._next_lsn = lsn + 1
        self._pending.append(_decode_payload(lsn, encoded[_REC_HEADER.size:]))
        if crash_point == "post-append":
            raise SimulatedCrash("post-append")
        return lsn

    def checkpoint(self) -> int:
        """Drop every pending batch (their effects are now checkpointed).

        Called after :func:`~repro.core.persist.save_index` commits:
        the saved generation already contains the updated pages and
        subfields, so replaying the log on top would be redundant (it
        would also be harmless — replay is idempotent).  Returns the
        number of batches dropped.  LSNs keep counting monotonically
        across checkpoints.
        """
        dropped = len(self._pending)
        self._fh.truncate(_FILE_HEADER.size)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.seek(0, os.SEEK_END)
        self._pending = []
        return dropped

    def close(self) -> None:
        """Close the file handle (the log remains valid on disk)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> WriteAheadLog:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""I/O accounting shared by every disk-backed structure.

The paper's central claim is about *access patterns* (clustered sequential
bursts vs. scattered random probes vs. full scans), so the reproduction
counts page reads and classifies them as sequential or random.  A read is
*sequential* when it targets the page immediately following the previously
read page of the same simulated file, which is how the clustered subfield
layout of I-Hilbert earns its advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

#: Simulated disk service times per 4 KiB page, calibrated to the paper's
#: era (c. 2001 commodity disk: ~8.5 ms average seek + rotational delay
#: for a random page, ~0.2 ms streaming transfer for a sequential page).
#: The bench harness and the parallel engine's device model both derive
#: their timing from these constants, so "simulated disk time" means the
#: same thing everywhere.
RANDOM_READ_MS = 8.5
SEQUENTIAL_READ_MS = 0.2


@dataclass
class IOStats:
    """Mutable counters for simulated disk traffic.

    One :class:`IOStats` instance is typically shared by several
    :class:`~repro.storage.disk.DiskManager` files so that an experiment can
    report a single aggregate, while sequentiality is still judged per file.
    """

    page_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    #: Pages skipped by short forward seeks (they stream past the head and
    #: cost transfer time, not a full seek); see DiskManager.near_window.
    skipped_pages: int = 0
    page_writes: int = 0
    pages_allocated: int = 0
    cache_hits: int = 0
    #: Read attempts repeated after a transient fault (each retry is
    #: also charged as a page read; see RetryingDiskManager).
    read_retries: int = 0
    #: Reads that failed page-checksum verification (CorruptPageError).
    checksum_failures: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return replace(self)

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter deltas accumulated since ``earlier``."""
        return type(self)(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)})

    def __add__(self, other: "IOStats") -> "IOStats":
        """Field-wise sum (e.g. merging per-worker counters)."""
        return type(self)(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})

    def __iadd__(self, other: "IOStats") -> "IOStats":
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    def restore(self, earlier: "IOStats") -> None:
        """Copy every counter of ``earlier`` into this instance.

        Lets metadata passes (e.g. EXPLAIN's statistics scan) roll their
        accounting back so they stay invisible to the experiment.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(earlier, f.name))

    def simulated_cost(self, *, random_read: float = 1.0,
                       sequential_read: float = 0.1) -> float:
        """Weighted I/O cost with a configurable random:sequential ratio.

        Rotational disks of the paper's era served a sequential page roughly
        an order of magnitude faster than a random one; the default weights
        encode that ratio.
        """
        return (self.random_reads * random_read
                + (self.sequential_reads + self.skipped_pages)
                * sequential_read)


@dataclass
class CostModelParams:
    """Weights used when converting counters into a single scalar cost."""

    random_read: float = 1.0
    sequential_read: float = 0.1
    extras: dict = field(default_factory=dict)

"""I/O accounting shared by every disk-backed structure.

The paper's central claim is about *access patterns* (clustered sequential
bursts vs. scattered random probes vs. full scans), so the reproduction
counts page reads and classifies them as sequential or random.  A read is
*sequential* when it targets the page immediately following the previously
read page of the same simulated file, which is how the clustered subfield
layout of I-Hilbert earns its advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters for simulated disk traffic.

    One :class:`IOStats` instance is typically shared by several
    :class:`~repro.storage.disk.DiskManager` files so that an experiment can
    report a single aggregate, while sequentiality is still judged per file.
    """

    page_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    #: Pages skipped by short forward seeks (they stream past the head and
    #: cost transfer time, not a full seek); see DiskManager.near_window.
    skipped_pages: int = 0
    page_writes: int = 0
    pages_allocated: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        self.page_reads = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.skipped_pages = 0
        self.page_writes = 0
        self.pages_allocated = 0
        self.cache_hits = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            page_reads=self.page_reads,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            skipped_pages=self.skipped_pages,
            page_writes=self.page_writes,
            pages_allocated=self.pages_allocated,
            cache_hits=self.cache_hits,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter deltas accumulated since ``earlier``."""
        return IOStats(
            page_reads=self.page_reads - earlier.page_reads,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            random_reads=self.random_reads - earlier.random_reads,
            skipped_pages=self.skipped_pages - earlier.skipped_pages,
            page_writes=self.page_writes - earlier.page_writes,
            pages_allocated=self.pages_allocated - earlier.pages_allocated,
            cache_hits=self.cache_hits - earlier.cache_hits,
        )

    def simulated_cost(self, *, random_read: float = 1.0,
                       sequential_read: float = 0.1) -> float:
        """Weighted I/O cost with a configurable random:sequential ratio.

        Rotational disks of the paper's era served a sequential page roughly
        an order of magnitude faster than a random one; the default weights
        encode that ratio.
        """
        return (self.random_reads * random_read
                + (self.sequential_reads + self.skipped_pages)
                * sequential_read)


@dataclass
class CostModelParams:
    """Weights used when converting counters into a single scalar cost."""

    random_read: float = 1.0
    sequential_read: float = 0.1
    extras: dict = field(default_factory=dict)

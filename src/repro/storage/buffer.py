"""LRU buffer pool in front of a :class:`~repro.storage.disk.DiskManager`.

The pool caches decoded page bytes; a hit is charged to
``IOStats.cache_hits`` instead of a disk read.  Experiments that want cold
queries call :meth:`BufferPool.clear` between queries.

Besides the per-file ``IOStats`` accounting, every pool keeps its own
cumulative hit/miss/eviction counters (:meth:`BufferPool.counters`), and
its capacity can be changed in place with :meth:`BufferPool.resize` — the
batch query engine uses this to lend an index a large shared cache for the
duration of a batch and hand it back unchanged afterwards.

When several tenants share one pool (the serve layer multiplexes every
client of a field onto the field's pool), reads can additionally be
attributed to a *tenant*: per-tenant hits, misses and payload bytes
accumulate in :meth:`BufferPool.tenant_counters`, and
:meth:`BufferPool.tenant_residency` reports who is occupying the resident
frames.  Residency is computed over *distinct* pages: a page touched by
several tenants is shared, counted once in every total — summing the
per-tenant exclusive figures plus the shared pool never double-counts a
frame, so the report's totals always equal the pool's true footprint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from .disk import DiskManager

_POOL_READS = REGISTRY.counter(
    "repro_pool_reads_total",
    "Buffer-pool read outcomes per backing file (event: hit|miss).")
_POOL_EVICTIONS = REGISTRY.counter(
    "repro_pool_evictions_total",
    "LRU evictions per backing file (capacity pressure only).")
_POOL_FRAMES = REGISTRY.gauge(
    "repro_pool_frames",
    "Resident frames per backing file at last update.")


@dataclass(frozen=True)
class PoolCounters:
    """Cumulative hit/miss/eviction counts of one :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total reads served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the pool (0.0 when unused)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def diff(self, earlier: "PoolCounters") -> "PoolCounters":
        """Counter deltas accumulated since ``earlier``."""
        return PoolCounters(hits=self.hits - earlier.hits,
                            misses=self.misses - earlier.misses,
                            evictions=self.evictions - earlier.evictions)

    def __add__(self, other: "PoolCounters") -> "PoolCounters":
        return PoolCounters(hits=self.hits + other.hits,
                            misses=self.misses + other.misses,
                            evictions=self.evictions + other.evictions)


@dataclass(frozen=True)
class TenantCounters:
    """Cumulative per-tenant read traffic through one shared pool."""

    hits: int = 0
    misses: int = 0
    #: Payload bytes served to this tenant (hits and misses alike).
    bytes_read: int = 0

    @property
    def accesses(self) -> int:
        """Total reads served to this tenant."""
        return self.hits + self.misses

    def to_dict(self) -> dict:
        """JSON-safe form, for the serve layer's ``stats`` verb."""
        return {"hits": self.hits, "misses": self.misses,
                "bytes_read": self.bytes_read}


class BufferPool:
    """Write-through LRU cache of pages.

    Parameters
    ----------
    disk:
        Backing file.
    capacity:
        Maximum number of cached pages; ``0`` disables caching entirely,
        turning every access into a disk read.
    """

    def __init__(self, disk: DiskManager, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Tenant attribution: per-tenant [hits, misses, bytes] rows and,
        # for every *resident* frame, the set of tenants that read it
        # while resident (dropped with the frame).
        self._tenant_rows: dict[str, list[int]] = {}
        self._page_tenants: dict[int, set[str]] = {}
        self._current_tenant: str | None = None
        # One coarse lock covers the frame map, the pool counters, and
        # the backing disk's IOStats accounting on the miss path, so
        # concurrent readers (the parallel query engine's workers, or
        # any future caller) can never lose counter increments or
        # corrupt the LRU order.  Uncontended cost is one C-level
        # acquire/release per access.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, page_id: int, tenant: str | None = None) -> bytes:
        """Return page bytes, from cache when resident.

        ``tenant`` (or, when omitted, the pool's current tenant — see
        :meth:`set_tenant`) attributes the access to a tenant's
        counters; ``None`` leaves the read unattributed.
        """
        with self._lock:
            if tenant is None:
                tenant = self._current_tenant
            return self._read_locked(page_id, tenant)

    def _read_locked(self, page_id: int, tenant: str | None) -> bytes:
        """One hit-or-miss access; the caller holds the lock."""
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.hits += 1
            self.disk.stats.cache_hits += 1
            if REGISTRY.enabled:
                _POOL_READS.inc(1, disk=self.disk.name, event="hit")
            data = self._frames[page_id]
            if tenant is not None:
                self._attribute(tenant, page_id, len(data), hit=True)
            return data
        self.misses += 1
        if REGISTRY.enabled:
            _POOL_READS.inc(1, disk=self.disk.name, event="miss")
        data = self.disk.read(page_id)
        self._admit(page_id, data)
        if tenant is not None:
            self._attribute(tenant, page_id, len(data), hit=False)
        return data

    def read_many(self, page_ids, tenant: str | None = None) -> list:
        """Read a batch of pages with serial-identical accounting.

        Hits, misses, eviction counts, tenant attribution, and the
        backing disk's ``IOStats`` come out exactly as a loop of
        :meth:`read` calls would — the batch only saves per-page lock
        round-trips and lets the disk account misses in bulk
        (:meth:`DiskManager.read_many`).  Batched miss prefetching is
        only safe when admission cannot evict (an eviction mid-batch
        could turn an expected hit stale), so it engages when the pool
        is capacity-0 (every access misses, nothing is admitted) or
        when all missing pages fit without eviction; otherwise the
        batch degrades to exact per-page accesses under one lock.
        """
        page_ids = list(page_ids)
        with self._lock:
            if tenant is None:
                tenant = self._current_tenant
            frames = self._frames
            if self.capacity == 0 and not frames:
                # Admission-free: every access is a miss straight to disk.
                self.misses += len(page_ids)
                if REGISTRY.enabled and page_ids:
                    _POOL_READS.inc(len(page_ids), disk=self.disk.name,
                                    event="miss")
                payloads = self.disk.read_many(page_ids)
                if tenant is not None:
                    for pid, data in zip(page_ids, payloads):
                        self._attribute(tenant, pid, len(data), hit=False)
                return payloads
            missing: list[int] = []
            seen: set[int] = set()
            for pid in page_ids:
                if pid not in frames and pid not in seen:
                    missing.append(pid)
                    seen.add(pid)
            if len(frames) + len(missing) > self.capacity:
                # Eviction possible mid-batch: classify one at a time.
                return [self._read_locked(pid, tenant) for pid in page_ids]
            fetched = dict(zip(missing, self.disk.read_many(missing))) \
                if missing else {}
            hits = misses = 0
            out: list = []
            for pid in page_ids:
                data = frames.get(pid)
                if data is not None:
                    frames.move_to_end(pid)
                    hits += 1
                    if tenant is not None:
                        self._attribute(tenant, pid, len(data), hit=True)
                else:
                    data = fetched[pid]
                    misses += 1
                    self._admit(pid, data)
                    if tenant is not None:
                        self._attribute(tenant, pid, len(data), hit=False)
                out.append(data)
            self.hits += hits
            self.misses += misses
            self.disk.stats.cache_hits += hits
            if REGISTRY.enabled:
                if hits:
                    _POOL_READS.inc(hits, disk=self.disk.name, event="hit")
                if misses:
                    _POOL_READS.inc(misses, disk=self.disk.name,
                                    event="miss")
            return out

    def write(self, page_id: int, data: bytes) -> None:
        """Write through to disk and refresh the cached copy."""
        with self._lock:
            self.disk.write(page_id, data)
            if page_id in self._frames or self.capacity:
                # Re-read nothing: the disk normalizes padding, so
                # mirror its stored payload.
                self._admit(page_id, self.disk.page_payload(page_id))

    def resize(self, capacity: int) -> None:
        """Change the pool capacity in place.

        Growing keeps every resident frame; shrinking evicts LRU frames
        (counted in :attr:`evictions`) until the new bound holds.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        with self._lock:
            self.capacity = capacity
            self._shrink()

    def counters(self) -> PoolCounters:
        """Snapshot of the cumulative hit/miss/eviction counters."""
        with self._lock:
            return PoolCounters(hits=self.hits, misses=self.misses,
                                evictions=self.evictions)

    # -- tenant accounting --------------------------------------------------

    def set_tenant(self, tenant: str | None) -> str | None:
        """Set the tenant that unattributed reads are charged to.

        Returns the previous tenant so callers can restore it.  The
        serve layer's facade brackets every engine call with this (its
        per-field lock serializes the calls, so the attribute cannot be
        clobbered mid-request); code that already knows its tenant can
        pass ``tenant=`` to :meth:`read` directly instead.
        """
        with self._lock:
            previous = self._current_tenant
            self._current_tenant = tenant
            return previous

    def tenant_counters(self) -> dict[str, TenantCounters]:
        """Per-tenant cumulative read traffic (tenant → counters)."""
        with self._lock:
            return {tenant: TenantCounters(hits=row[0], misses=row[1],
                                           bytes_read=row[2])
                    for tenant, row in sorted(self._tenant_rows.items())}

    def reset_tenant_counters(self) -> None:
        """Zero the per-tenant traffic counters (residency is kept)."""
        with self._lock:
            self._tenant_rows.clear()

    def tenant_residency(self) -> dict:
        """Who occupies the resident frames, without double counting.

        A frame read by exactly one tenant while resident is
        *exclusive* to it; a frame read by several tenants is *shared*
        and counted once in the shared figures (never once per tenant);
        frames nobody read through a tenant (e.g. admitted by writes)
        are *unattributed*.  The invariant this report maintains —
        pinned by ``tests/test_concurrency.py`` — is::

            sum(exclusive_pages) + shared_pages + unattributed_pages
                == resident_pages == len(pool)

        and likewise for bytes, so summing the per-tenant column can
        never exceed the pool's true footprint.  Each tenant's entry
        also reports ``shared_pages``/``shared_bytes`` — the shared
        frames *it* touched — for visibility; those overlap between
        tenants by construction and are excluded from the totals.
        """
        with self._lock:
            tenants: dict[str, dict] = {
                tenant: {"exclusive_pages": 0, "exclusive_bytes": 0,
                         "shared_pages": 0, "shared_bytes": 0}
                for tenant in self._tenant_rows
            }
            shared_pages = shared_bytes = 0
            unattributed_pages = unattributed_bytes = 0
            resident_bytes = 0
            for page_id, data in self._frames.items():
                size = len(data)
                resident_bytes += size
                readers = self._page_tenants.get(page_id)
                if not readers:
                    unattributed_pages += 1
                    unattributed_bytes += size
                elif len(readers) == 1:
                    entry = tenants.setdefault(
                        next(iter(readers)),
                        {"exclusive_pages": 0, "exclusive_bytes": 0,
                         "shared_pages": 0, "shared_bytes": 0})
                    entry["exclusive_pages"] += 1
                    entry["exclusive_bytes"] += size
                else:
                    shared_pages += 1
                    shared_bytes += size
                    for tenant in readers:
                        entry = tenants.setdefault(
                            tenant,
                            {"exclusive_pages": 0, "exclusive_bytes": 0,
                             "shared_pages": 0, "shared_bytes": 0})
                        entry["shared_pages"] += 1
                        entry["shared_bytes"] += size
            return {
                "tenants": dict(sorted(tenants.items())),
                "shared_pages": shared_pages,
                "shared_bytes": shared_bytes,
                "unattributed_pages": unattributed_pages,
                "unattributed_bytes": unattributed_bytes,
                "resident_pages": len(self._frames),
                "resident_bytes": resident_bytes,
            }

    def _attribute(self, tenant: str, page_id: int, size: int,
                   hit: bool) -> None:
        """Charge one read to ``tenant`` (caller holds the lock)."""
        row = self._tenant_rows.get(tenant)
        if row is None:
            row = self._tenant_rows[tenant] = [0, 0, 0]
        row[0 if hit else 1] += 1
        row[2] += size
        if page_id in self._frames:
            readers = self._page_tenants.get(page_id)
            if readers is None:
                readers = self._page_tenants[page_id] = set()
            readers.add(tenant)

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (frames stay resident)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def invalidate(self, page_id: int) -> None:
        """Drop one cached frame, if resident.

        Used after out-of-band page mutations (fault injection, snapshot
        restore) so the pool cannot serve bytes the disk no longer
        holds.  Not an eviction — invalidation is correctness, not
        capacity pressure.
        """
        with self._lock:
            self._frames.pop(page_id, None)
            self._page_tenants.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached frame (simulates a cold cache).

        A deliberate cold reset is not cache pressure, so it does not
        count toward :attr:`evictions`.
        """
        with self._lock:
            self._frames.clear()
            self._page_tenants.clear()

    def _admit(self, page_id: int, data: bytes) -> None:
        if not self.capacity:
            return
        self._frames[page_id] = data
        self._frames.move_to_end(page_id)
        self._shrink()

    def _shrink(self) -> None:
        evicted = 0
        while len(self._frames) > self.capacity:
            page_id, _ = self._frames.popitem(last=False)
            self._page_tenants.pop(page_id, None)
            self.evictions += 1
            evicted += 1
        if REGISTRY.enabled:
            if evicted:
                _POOL_EVICTIONS.inc(evicted, disk=self.disk.name)
            _POOL_FRAMES.set(len(self._frames), disk=self.disk.name)

"""LRU buffer pool in front of a :class:`~repro.storage.disk.DiskManager`.

The pool caches decoded page bytes; a hit is charged to
``IOStats.cache_hits`` instead of a disk read.  Experiments that want cold
queries call :meth:`BufferPool.clear` between queries.

Besides the per-file ``IOStats`` accounting, every pool keeps its own
cumulative hit/miss/eviction counters (:meth:`BufferPool.counters`), and
its capacity can be changed in place with :meth:`BufferPool.resize` — the
batch query engine uses this to lend an index a large shared cache for the
duration of a batch and hand it back unchanged afterwards.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from .disk import DiskManager

_POOL_READS = REGISTRY.counter(
    "repro_pool_reads_total",
    "Buffer-pool read outcomes per backing file (event: hit|miss).")
_POOL_EVICTIONS = REGISTRY.counter(
    "repro_pool_evictions_total",
    "LRU evictions per backing file (capacity pressure only).")
_POOL_FRAMES = REGISTRY.gauge(
    "repro_pool_frames",
    "Resident frames per backing file at last update.")


@dataclass(frozen=True)
class PoolCounters:
    """Cumulative hit/miss/eviction counts of one :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total reads served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the pool (0.0 when unused)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def diff(self, earlier: "PoolCounters") -> "PoolCounters":
        """Counter deltas accumulated since ``earlier``."""
        return PoolCounters(hits=self.hits - earlier.hits,
                            misses=self.misses - earlier.misses,
                            evictions=self.evictions - earlier.evictions)

    def __add__(self, other: "PoolCounters") -> "PoolCounters":
        return PoolCounters(hits=self.hits + other.hits,
                            misses=self.misses + other.misses,
                            evictions=self.evictions + other.evictions)


class BufferPool:
    """Write-through LRU cache of pages.

    Parameters
    ----------
    disk:
        Backing file.
    capacity:
        Maximum number of cached pages; ``0`` disables caching entirely,
        turning every access into a disk read.
    """

    def __init__(self, disk: DiskManager, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # One coarse lock covers the frame map, the pool counters, and
        # the backing disk's IOStats accounting on the miss path, so
        # concurrent readers (the parallel query engine's workers, or
        # any future caller) can never lose counter increments or
        # corrupt the LRU order.  Uncontended cost is one C-level
        # acquire/release per access.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, page_id: int) -> bytes:
        """Return page bytes, from cache when resident."""
        with self._lock:
            if page_id in self._frames:
                self._frames.move_to_end(page_id)
                self.hits += 1
                self.disk.stats.cache_hits += 1
                if REGISTRY.enabled:
                    _POOL_READS.inc(1, disk=self.disk.name, event="hit")
                return self._frames[page_id]
            self.misses += 1
            if REGISTRY.enabled:
                _POOL_READS.inc(1, disk=self.disk.name, event="miss")
            data = self.disk.read(page_id)
            self._admit(page_id, data)
            return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write through to disk and refresh the cached copy."""
        with self._lock:
            self.disk.write(page_id, data)
            if page_id in self._frames or self.capacity:
                # Re-read nothing: the disk normalizes padding, so
                # mirror its stored payload.
                self._admit(page_id, self.disk.page_payload(page_id))

    def resize(self, capacity: int) -> None:
        """Change the pool capacity in place.

        Growing keeps every resident frame; shrinking evicts LRU frames
        (counted in :attr:`evictions`) until the new bound holds.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        with self._lock:
            self.capacity = capacity
            self._shrink()

    def counters(self) -> PoolCounters:
        """Snapshot of the cumulative hit/miss/eviction counters."""
        with self._lock:
            return PoolCounters(hits=self.hits, misses=self.misses,
                                evictions=self.evictions)

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (frames stay resident)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def invalidate(self, page_id: int) -> None:
        """Drop one cached frame, if resident.

        Used after out-of-band page mutations (fault injection, snapshot
        restore) so the pool cannot serve bytes the disk no longer
        holds.  Not an eviction — invalidation is correctness, not
        capacity pressure.
        """
        with self._lock:
            self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached frame (simulates a cold cache).

        A deliberate cold reset is not cache pressure, so it does not
        count toward :attr:`evictions`.
        """
        with self._lock:
            self._frames.clear()

    def _admit(self, page_id: int, data: bytes) -> None:
        if not self.capacity:
            return
        self._frames[page_id] = data
        self._frames.move_to_end(page_id)
        self._shrink()

    def _shrink(self) -> None:
        evicted = 0
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1
            evicted += 1
        if REGISTRY.enabled:
            if evicted:
                _POOL_EVICTIONS.inc(evicted, disk=self.disk.name)
            _POOL_FRAMES.set(len(self._frames), disk=self.disk.name)

"""LRU buffer pool in front of a :class:`~repro.storage.disk.DiskManager`.

The pool caches decoded page bytes; a hit is charged to
``IOStats.cache_hits`` instead of a disk read.  Experiments that want cold
queries call :meth:`BufferPool.clear` between queries.
"""

from __future__ import annotations

from collections import OrderedDict

from .disk import DiskManager


class BufferPool:
    """Write-through LRU cache of pages.

    Parameters
    ----------
    disk:
        Backing file.
    capacity:
        Maximum number of cached pages; ``0`` disables caching entirely,
        turning every access into a disk read.
    """

    def __init__(self, disk: DiskManager, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, page_id: int) -> bytes:
        """Return page bytes, from cache when resident."""
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.disk.stats.cache_hits += 1
            return self._frames[page_id]
        data = self.disk.read(page_id)
        self._admit(page_id, data)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write through to disk and refresh the cached copy."""
        self.disk.write(page_id, data)
        if page_id in self._frames or self.capacity:
            # Re-read nothing: the disk normalizes padding, so mirror that.
            self._admit(page_id, self.disk._pages[page_id])

    def clear(self) -> None:
        """Drop every cached frame (simulates a cold cache)."""
        self._frames.clear()

    def _admit(self, page_id: int, data: bytes) -> None:
        if not self.capacity:
            return
        self._frames[page_id] = data
        self._frames.move_to_end(page_id)
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)

"""A simulated disk of fixed-size pages.

Each :class:`DiskManager` models one file of 4 KiB pages (the page size used
in the paper's experiments, §4).  Reads and writes are accounted in an
:class:`~repro.storage.stats.IOStats` object; a read is classified as
sequential when it targets the page directly after the previously read page
of the same file.
"""

from __future__ import annotations

from ..obs.metrics import REGISTRY
from .stats import IOStats

#: Page size used throughout the system; matches the paper's 4 KB pages.
PAGE_SIZE = 4096

_READS = REGISTRY.counter(
    "repro_disk_page_reads_total",
    "Accounted page reads per simulated file, split by sequentiality.")
_SKIPPED = REGISTRY.counter(
    "repro_disk_skipped_pages_total",
    "Pages streamed past by short forward seeks, per simulated file.")
_WRITES = REGISTRY.counter(
    "repro_disk_page_writes_total",
    "Accounted page writes per simulated file.")
_ALLOCS = REGISTRY.counter(
    "repro_disk_pages_allocated_total",
    "Pages allocated per simulated file.")


class PageError(Exception):
    """Raised for out-of-range page ids or oversized payloads."""


class DiskManager:
    """An in-memory array of pages with I/O accounting.

    Parameters
    ----------
    stats:
        Counter object to charge reads/writes to.  Several files may share
        one ``IOStats`` so an experiment reports a single aggregate.
    name:
        Label used in error messages and debugging output.
    page_size:
        Page capacity in bytes; defaults to :data:`PAGE_SIZE`.
    """

    #: Forward gaps up to this many pages count as streaming past (the
    #: skipped pages cost transfer time) rather than a full random seek.
    NEAR_WINDOW = 16

    def __init__(self, stats: IOStats | None = None, name: str = "disk",
                 page_size: int = PAGE_SIZE,
                 near_window: int | None = None) -> None:
        self.stats = stats if stats is not None else IOStats()
        self.name = name
        self.page_size = page_size
        self.near_window = (self.NEAR_WINDOW if near_window is None
                            else near_window)
        self._pages: list[bytes] = []
        self._last_read: int | None = None

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def allocate(self) -> int:
        """Allocate a zeroed page and return its id."""
        self._pages.append(bytes(self.page_size))
        self.stats.pages_allocated += 1
        if REGISTRY.enabled:
            _ALLOCS.inc(1, disk=self.name)
        return len(self._pages) - 1

    def allocate_many(self, count: int) -> int:
        """Allocate ``count`` contiguous pages; return the first id."""
        if count < 0:
            raise PageError(f"cannot allocate {count} pages")
        first = len(self._pages)
        self._pages.extend(bytes(self.page_size) for _ in range(count))
        self.stats.pages_allocated += count
        if REGISTRY.enabled and count:
            _ALLOCS.inc(count, disk=self.name)
        return first

    def read(self, page_id: int) -> bytes:
        """Return the page contents, charging one accounted read."""
        self._check(page_id)
        self.stats.page_reads += 1
        gap = (page_id - self._last_read - 1
               if self._last_read is not None else -1)
        if 0 <= gap <= self.near_window:
            # Short forward hop: the head streams over the gap.
            self.stats.sequential_reads += 1
            self.stats.skipped_pages += gap
            if REGISTRY.enabled:
                _READS.inc(1, disk=self.name, kind="sequential")
                if gap:
                    _SKIPPED.inc(gap, disk=self.name)
        else:
            self.stats.random_reads += 1
            if REGISTRY.enabled:
                _READS.inc(1, disk=self.name, kind="random")
        self._last_read = page_id
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page contents, charging one accounted write."""
        self._check(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"{self.name}: payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}")
        if len(data) < self.page_size:
            data = bytes(data) + bytes(self.page_size - len(data))
        self._pages[page_id] = bytes(data)
        self.stats.page_writes += 1
        if REGISTRY.enabled:
            _WRITES.inc(1, disk=self.name)

    def reset_head(self) -> None:
        """Forget the last-read position (e.g. between queries).

        The next read will count as random, mimicking a cold disk arm.
        """
        self._last_read = None

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(
                f"{self.name}: page {page_id} out of range "
                f"(file has {len(self._pages)} pages)")

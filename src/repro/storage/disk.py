"""A simulated disk of fixed-size, checksummed pages.

Each :class:`DiskManager` models one file of 4 KiB pages (the page size
used in the paper's experiments, §4).  Reads and writes are accounted in
an :class:`~repro.storage.stats.IOStats` object; a read is classified as
sequential when it targets the page directly after the previously read
page of the same file.

Every page is stored as a *frame*: a 16-byte header (magic, format
version, checksum algorithm, payload length, CRC of the payload)
followed by the payload, which therefore holds at most
:attr:`DiskManager.usable_page_size` = ``page_size - 16`` bytes.
:meth:`DiskManager.write` computes the checksum; :meth:`DiskManager.read`
verifies it and raises :class:`CorruptPageError` on mismatch, so bit rot
and torn writes surface as typed errors instead of silently wrong
query answers.  In memory the header fields live beside the payload (no
per-read slicing or copying); :meth:`DiskManager.frame_bytes`
materializes the full on-disk frame for snapshots and scrubbing.

Failure injection hooks into the same object: attach a
:class:`~repro.storage.faults.FaultInjector` via :attr:`fault_injector`
and reads/writes start failing on the injector's deterministic
schedule.  With no injector attached the only hot-path overhead is the
checksum verification itself.
"""

from __future__ import annotations

import struct

from ..obs.metrics import REGISTRY
from .faults import CorruptPageError, PageError, TransientIOError
from .stats import IOStats

try:                                    # pragma: no cover - optional wheel
    from crc32c import crc32c as page_checksum
    CHECKSUM_ALGO = 2
    CHECKSUM_NAME = "crc32c"
except ImportError:                     # stdlib fallback, same guarantees
    from zlib import crc32 as page_checksum
    CHECKSUM_ALGO = 1
    CHECKSUM_NAME = "crc32"

#: Page size used throughout the system; matches the paper's 4 KB pages.
PAGE_SIZE = 4096

#: Bytes of every page reserved for the frame header.
PAGE_HEADER_SIZE = 16

#: Frame header: magic, format version, checksum algorithm, payload
#: length, payload CRC, 4 reserved bytes.
_FRAME = struct.Struct("<4sBBHI4x")
_FRAME_MAGIC = b"RPG\x01"
FRAME_VERSION = 1

assert _FRAME.size == PAGE_HEADER_SIZE

_READS = REGISTRY.counter(
    "repro_disk_page_reads_total",
    "Accounted page reads per simulated file, split by sequentiality.")
_SKIPPED = REGISTRY.counter(
    "repro_disk_skipped_pages_total",
    "Pages streamed past by short forward seeks, per simulated file.")
_WRITES = REGISTRY.counter(
    "repro_disk_page_writes_total",
    "Accounted page writes per simulated file.")
_ALLOCS = REGISTRY.counter(
    "repro_disk_pages_allocated_total",
    "Pages allocated per simulated file.")
_CORRUPT = REGISTRY.counter(
    "repro_disk_corrupt_pages_total",
    "Reads that failed page-checksum verification, per simulated file.")
_INJECTED = REGISTRY.counter(
    "repro_disk_injected_faults_total",
    "Faults fired by an attached FaultInjector, per file and kind.")


class DiskManager:
    """An in-memory array of checksummed pages with I/O accounting.

    Parameters
    ----------
    stats:
        Counter object to charge reads/writes to.  Several files may share
        one ``IOStats`` so an experiment reports a single aggregate.
    name:
        Label used in error messages and debugging output.
    page_size:
        Page capacity in bytes; defaults to :data:`PAGE_SIZE`.  Must
        exceed :data:`PAGE_HEADER_SIZE`; payloads may use at most
        :attr:`usable_page_size` bytes.
    """

    #: Forward gaps up to this many pages count as streaming past (the
    #: skipped pages cost transfer time) rather than a full random seek.
    NEAR_WINDOW = 16

    def __init__(self, stats: IOStats | None = None, name: str = "disk",
                 page_size: int = PAGE_SIZE,
                 near_window: int | None = None) -> None:
        if page_size <= PAGE_HEADER_SIZE:
            raise PageError(
                f"page size {page_size} leaves no payload room after the "
                f"{PAGE_HEADER_SIZE}-byte frame header")
        self.stats = stats if stats is not None else IOStats()
        self.name = name
        self.page_size = page_size
        self.near_window = (self.NEAR_WINDOW if near_window is None
                            else near_window)
        #: Optional :class:`~repro.storage.faults.FaultInjector`; when
        #: None (default) reads and writes never fail on purpose.
        self.fault_injector = None
        self._last_read: int | None = None
        self._zero_payload = bytes(self.usable_page_size)
        self._zero_crc = page_checksum(self._zero_payload)
        self._init_storage()

    def _init_storage(self) -> None:
        """Create the backing store (overridable by other backends)."""
        self._pages: list[bytes] = []    # payloads, usable_page_size each
        self._crcs: list[int] = []       # stored payload checksums
        self._lens: list[int] = []       # payload length as written

    def __len__(self) -> int:
        return self.num_pages

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def usable_page_size(self) -> int:
        """Payload bytes available per page after the frame header."""
        return self.page_size - PAGE_HEADER_SIZE

    def allocate(self) -> int:
        """Allocate a zeroed page and return its id."""
        self._append_pages(1)
        self.stats.pages_allocated += 1
        if REGISTRY.enabled:
            _ALLOCS.inc(1, disk=self.name)
        return self.num_pages - 1

    def allocate_many(self, count: int) -> int:
        """Allocate ``count`` contiguous pages; return the first id."""
        if count < 0:
            raise PageError(f"cannot allocate {count} pages")
        first = self.num_pages
        self._append_pages(count)
        self.stats.pages_allocated += count
        if REGISTRY.enabled and count:
            _ALLOCS.inc(count, disk=self.name)
        return first

    def _append_pages(self, count: int) -> None:
        """Grow the backing store by ``count`` zeroed pages."""
        self._pages.extend(self._zero_payload for _ in range(count))
        self._crcs.extend(self._zero_crc for _ in range(count))
        self._lens.extend(0 for _ in range(count))

    def read(self, page_id: int) -> bytes:
        """Return the page payload, charging one accounted read.

        The payload checksum is verified against the frame header on
        every read; a mismatch raises :class:`CorruptPageError` (the
        read is still accounted — a failed transfer moved the head).
        With a fault injector attached, the injector may raise
        :class:`TransientIOError` or damage the page first.
        """
        self._check(page_id)
        self.stats.page_reads += 1
        gap = (page_id - self._last_read - 1
               if self._last_read is not None else -1)
        if 0 <= gap <= self.near_window:
            # Short forward hop: the head streams over the gap.
            self.stats.sequential_reads += 1
            self.stats.skipped_pages += gap
            if REGISTRY.enabled:
                _READS.inc(1, disk=self.name, kind="sequential")
                if gap:
                    _SKIPPED.inc(gap, disk=self.name)
        else:
            self.stats.random_reads += 1
            if REGISTRY.enabled:
                _READS.inc(1, disk=self.name, kind="random")
        self._last_read = page_id
        if self.fault_injector is not None:
            self._injected_read(page_id)
        return self._verified_payload(page_id)

    def read_many(self, page_ids) -> list:
        """Read several pages, accounted identically to serial :meth:`read`.

        The per-page sequential/random classification walks the same
        last-read head position as a loop of ``read()`` calls would, so
        ``IOStats`` comes out byte-identical; the savings are the Python
        attribute lookups and counter updates, applied once per batch
        instead of once per page.  Counter application happens in a
        ``finally`` block covering every page whose transfer was
        *attempted* — a checksum failure mid-batch leaves the stats
        exactly as the serial loop would (the failed read is accounted,
        later pages are not).  With a fault injector attached the batch
        degrades to serial reads so injection schedules (and any
        retrying subclass's ``read``) observe every access.
        """
        if self.fault_injector is not None:
            return [self.read(pid) for pid in page_ids]
        for pid in page_ids:
            self._check(pid)
        payloads: list = []
        seq = rand = skip = 0
        last = self._last_read
        near = self.near_window
        verify = self._verified_payload
        try:
            for pid in page_ids:
                gap = pid - last - 1 if last is not None else -1
                if 0 <= gap <= near:
                    seq += 1
                    skip += gap
                else:
                    rand += 1
                last = pid
                payloads.append(verify(pid))
        finally:
            stats = self.stats
            stats.page_reads += seq + rand
            stats.sequential_reads += seq
            stats.random_reads += rand
            stats.skipped_pages += skip
            self._last_read = last
            if REGISTRY.enabled:
                if seq:
                    _READS.inc(seq, disk=self.name, kind="sequential")
                if rand:
                    _READS.inc(rand, disk=self.name, kind="random")
                if skip:
                    _SKIPPED.inc(skip, disk=self.name)
        return payloads

    def _verified_payload(self, page_id: int) -> bytes:
        """Checksum-verified payload of an already-accounted read."""
        data = self._pages[page_id]
        if page_checksum(data) != self._crcs[page_id]:
            self._checksum_failed(page_id)
        return data

    def _checksum_failed(self, page_id: int,
                         detail: str = "checksum mismatch") -> None:
        """Account one verification failure and raise the typed error."""
        self.stats.checksum_failures += 1
        if REGISTRY.enabled:
            _CORRUPT.inc(1, disk=self.name)
        raise CorruptPageError(self.name, page_id, detail)

    def write(self, page_id: int, data: bytes) -> None:
        """Frame and store the payload, charging one accounted write.

        Payloads larger than :attr:`usable_page_size` are rejected —
        the frame header claims the first :data:`PAGE_HEADER_SIZE`
        bytes of every page.  Shorter payloads are zero-padded; the
        header records the original length and the checksum of the
        padded payload.
        """
        self._check(page_id)
        if len(data) > self.usable_page_size:
            raise PageError(
                f"{self.name}: payload of {len(data)} bytes exceeds the "
                f"usable page size {self.usable_page_size} "
                f"({self.page_size}-byte page minus {PAGE_HEADER_SIZE}-byte "
                f"frame header)")
        length = len(data)
        if length < self.usable_page_size:
            data = bytes(data) + bytes(self.usable_page_size - length)
        else:
            data = bytes(data)
        crc = page_checksum(data)
        if self.fault_injector is not None:
            data, crc = self.fault_injector.on_write(self, page_id,
                                                     data, crc)
            if REGISTRY.enabled and self.fault_injector.events:
                last = self.fault_injector.events[-1]
                if last.kind == "torn_write" and last.page_id == page_id:
                    _INJECTED.inc(1, disk=self.name, kind="torn_write")
        self._store_payload(page_id, data, crc, length)
        self.stats.page_writes += 1
        if REGISTRY.enabled:
            _WRITES.inc(1, disk=self.name)

    def _store_payload(self, page_id: int, data: bytes, crc: int,
                       length: int) -> None:
        """Persist one framed payload into the backing store."""
        self._pages[page_id] = data
        self._crcs[page_id] = crc
        self._lens[page_id] = length

    def page_payload(self, page_id: int) -> bytes:
        """Stored payload of one page, unaccounted and unverified.

        Internal plumbing for the buffer pool's write-through admission,
        the fault injector's torn-write path and snapshot loading —
        places that need the raw stored bytes without charging I/O or
        re-running verification.
        """
        self._check(page_id)
        return self._pages[page_id]

    def reset_head(self) -> None:
        """Forget the last-read position (e.g. between queries).

        The next read will count as random, mimicking a cold disk arm.
        """
        self._last_read = None

    # -- framing (snapshots, scrub) ------------------------------------------

    def frame_bytes(self, page_id: int) -> bytes:
        """Full on-disk frame of one page (header + payload)."""
        self._check(page_id)
        header = _FRAME.pack(_FRAME_MAGIC, FRAME_VERSION, CHECKSUM_ALGO,
                             self._lens[page_id], self._crcs[page_id])
        return header + self._pages[page_id]

    def store_frame(self, page_id: int, frame: bytes,
                    verify: bool = True) -> None:
        """Install a serialized frame (snapshot load path).

        Parses and validates the frame header; with ``verify=True`` the
        payload checksum is also recomputed and compared, raising
        :class:`CorruptPageError` on mismatch.  Not accounted I/O.
        """
        self._check(page_id)
        length, crc, payload = parse_frame(self.name, page_id, frame,
                                           self.page_size)
        if verify and page_checksum(payload) != crc:
            raise CorruptPageError(self.name, page_id)
        self._pages[page_id] = payload
        self._crcs[page_id] = crc
        self._lens[page_id] = length

    def verify_page(self, page_id: int) -> bool:
        """Unaccounted checksum check of one page (scrub path)."""
        self._check(page_id)
        return page_checksum(self._pages[page_id]) == self._crcs[page_id]

    # -- fault-injection internals -------------------------------------------

    def _injected_read(self, page_id: int) -> None:
        try:
            self.fault_injector.on_read(self, page_id)
        except TransientIOError:
            if REGISTRY.enabled:
                _INJECTED.inc(1, disk=self.name, kind="read_error")
            raise
        if REGISTRY.enabled and self.fault_injector.events:
            last = self.fault_injector.events[-1]
            if last.page_id == page_id and last.kind in ("bit_flip",
                                                         "latency"):
                _INJECTED.inc(1, disk=self.name, kind=last.kind)

    def _flip_bit(self, page_id: int, byte_index: int, bit: int) -> None:
        """Flip one stored payload bit in place (bit-rot injection)."""
        page = bytearray(self._pages[page_id])
        page[byte_index] ^= 1 << bit
        self._pages[page_id] = bytes(page)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageError(
                f"{self.name}: page {page_id} out of range "
                f"(file has {self.num_pages} pages)")


def parse_frame(disk: str, page_id: int, frame: bytes,
                page_size: int) -> tuple[int, int, bytes]:
    """Split one serialized frame into ``(payload_len, crc, payload)``.

    Validates size, magic, version, and checksum algorithm; raises
    :class:`CorruptPageError` describing what is wrong.  The checksum
    itself is *not* recomputed here — callers decide whether to verify.
    """
    if len(frame) != page_size:
        raise CorruptPageError(
            disk, page_id,
            f"frame of {len(frame)} bytes, expected {page_size}")
    magic, version, algo, length, crc = _FRAME.unpack_from(frame, 0)
    if magic != _FRAME_MAGIC:
        raise CorruptPageError(disk, page_id, "bad frame magic")
    if version != FRAME_VERSION:
        raise CorruptPageError(
            disk, page_id, f"unsupported frame version {version}")
    if algo != CHECKSUM_ALGO:
        raise CorruptPageError(
            disk, page_id,
            f"frame written with checksum algorithm {algo}, this build "
            f"uses {CHECKSUM_ALGO} ({CHECKSUM_NAME})")
    if length > page_size - PAGE_HEADER_SIZE:
        raise CorruptPageError(
            disk, page_id, f"payload length {length} exceeds the page")
    return length, crc, frame[PAGE_HEADER_SIZE:]

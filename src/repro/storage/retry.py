"""Retry-with-backoff over the simulated disk.

Production storage distinguishes *transient* faults (a timed-out
request — retry it) from *permanent* ones (a page whose checksum fails —
retrying re-reads the same rotten bytes).  :class:`RetryingDiskManager`
encodes that policy: :class:`~repro.storage.faults.TransientIOError` is
retried up to :attr:`RetryPolicy.max_attempts` times with exponential
(simulated) backoff, while :class:`~repro.storage.faults.CorruptPageError`
propagates immediately.  Every retry is accounted — as an extra page
read in :class:`~repro.storage.stats.IOStats` (``read_retries``), as a
``repro_disk_read_retries_total`` metric, and as simulated backoff time
in :attr:`RetryingDiskManager.simulated_backoff_ms` — so experiments can
report exactly what fault tolerance costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from .disk import DiskManager
from .faults import TransientIOError

_RETRIES = REGISTRY.counter(
    "repro_disk_read_retries_total",
    "Read attempts repeated after a transient fault, per simulated file.")
_EXHAUSTED = REGISTRY.counter(
    "repro_disk_retries_exhausted_total",
    "Reads abandoned after max_attempts transient faults, per file.")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient read fault, and how fast.

    ``backoff_ms(attempt)`` grows exponentially:
    ``backoff_base_ms * backoff_factor ** (attempt - 1)`` for the
    attempt-th retry (1-based).
    """

    max_attempts: int = 4
    backoff_base_ms: float = 1.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff_ms(self, attempt: int) -> float:
        """Simulated delay before the ``attempt``-th retry (1-based)."""
        return self.backoff_base_ms * self.backoff_factor ** (attempt - 1)


class RetryingReadMixin:
    """Retry loop shared by every retrying disk backend.

    Mix in front of a :class:`DiskManager` subclass (method resolution
    order matters: the mixin's :meth:`read` wraps the backend's).  Only
    :class:`~repro.storage.faults.TransientIOError` is retried;
    permanent faults (:class:`~repro.storage.faults.CorruptPageError`,
    out-of-range ids) propagate unchanged on the first attempt.  When
    every attempt fails the last ``TransientIOError`` propagates, so
    callers always see a typed error.
    """

    def __init__(self, *args, retry_policy: RetryPolicy | None = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        #: Total simulated backoff delay spent on retries.
        self.simulated_backoff_ms = 0.0

    def read(self, page_id: int) -> bytes:
        """Accounted read with transient-fault retries (see class doc)."""
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                return super().read(page_id)
            except TransientIOError:
                if attempt >= policy.max_attempts:
                    if REGISTRY.enabled:
                        _EXHAUSTED.inc(1, disk=self.name)
                    raise
                self.stats.read_retries += 1
                self.simulated_backoff_ms += policy.backoff_ms(attempt)
                if REGISTRY.enabled:
                    _RETRIES.inc(1, disk=self.name)
                attempt += 1

    def read_many(self, page_ids) -> list:
        """Serial retrying reads: every page gets its own retry loop.

        The base class's bulk fast path would bypass the retry wrapper
        (and transient faults can come from sources other than an
        attached injector — e.g. the simulated remote tier's failure
        schedule), so a retrying disk always reads page by page.
        """
        return [self.read(pid) for pid in page_ids]


class RetryingDiskManager(RetryingReadMixin, DiskManager):
    """A :class:`DiskManager` whose reads survive transient faults."""

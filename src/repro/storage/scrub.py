"""Offline verification (and light repair) of saved index directories.

``python -m repro scrub <index-dir>`` walks a directory written by
:func:`~repro.core.persist.save_index`: it checks the manifest's
whole-file checksums, then opens every ``.pages`` snapshot and verifies
each page frame, reporting per-page status — which page ids are
damaged, in which file.  A clean report means the index can be loaded
and every page read without a :class:`~repro.storage.faults.CorruptPageError`.

Repair is deliberately conservative: page payloads carry no redundancy,
so a page whose checksum fails is *reported*, never guessed at.  What
``repair_index`` can fix is manifest drift — a stale whole-file
checksum over a file whose pages all verify — by recomputing the
manifest entries and rewriting ``meta.json`` atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.metrics import REGISTRY
from .snapshot import SnapshotError, fsync_dir, verify_snapshot

_SCRUBBED = REGISTRY.counter(
    "repro_scrub_pages_total",
    "Pages examined by scrub, per verification outcome.")


def file_sha256(path: str | Path) -> str:
    """Hex SHA-256 of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class FileStatus:
    """Scrub outcome of one manifest file."""

    role: str
    name: str
    ok: bool
    detail: str = "ok"
    pages: int = 0
    #: ``(page_id, reason)`` for every page that failed verification.
    bad_pages: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe dump."""
        return {"role": self.role, "name": self.name, "ok": self.ok,
                "detail": self.detail, "pages": self.pages,
                "bad_pages": [{"page_id": pid, "detail": why}
                              for pid, why in self.bad_pages]}


@dataclass
class ScrubReport:
    """Full scrub outcome of one index directory."""

    directory: str
    generation: int
    files: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every file and every page verified."""
        return all(f.ok for f in self.files)

    @property
    def bad_page_count(self) -> int:
        """Total pages that failed verification."""
        return sum(len(f.bad_pages) for f in self.files)

    def to_dict(self) -> dict:
        """JSON-safe dump (the CLI's ``--json`` output)."""
        return {"directory": self.directory, "generation": self.generation,
                "ok": self.ok, "files": [f.to_dict() for f in self.files]}

    def render(self) -> str:
        """Human-readable report, one line per file plus bad pages."""
        lines = [f"scrub {self.directory} (generation {self.generation})"]
        for f in self.files:
            if f.pages:
                good = f.pages - len(f.bad_pages)
                lines.append(f"  {f.name} [{f.role}]: "
                             f"{good}/{f.pages} pages ok — {f.detail}")
            else:
                lines.append(f"  {f.name} [{f.role}]: {f.detail}")
            for page_id, why in f.bad_pages:
                lines.append(f"    page {page_id}: {why}")
        lines.append(f"status: {'CLEAN' if self.ok else 'CORRUPT'}")
        return "\n".join(lines)


def _read_manifest(directory: Path) -> dict:
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise FileNotFoundError(
            f"{directory}: no meta.json — not an index directory")
    with open(meta_path) as fh:
        return json.load(fh)


def _scrub_file(directory: Path, role: str, entry: dict) -> FileStatus:
    """Verify one manifest entry: size, whole-file hash, page frames."""
    name = entry["name"]
    path = directory / name
    status = FileStatus(role=role, name=name, ok=True)
    if not path.exists():
        status.ok = False
        status.detail = "missing"
        return status
    size = path.stat().st_size
    if size != entry["bytes"]:
        status.ok = False
        status.detail = f"size {size}, manifest says {entry['bytes']}"
    elif file_sha256(path) != entry["sha256"]:
        status.ok = False
        status.detail = "whole-file checksum mismatch"
    if name.endswith(".pages"):
        try:
            from .snapshot import read_snapshot_header
            _page_size, num_pages = read_snapshot_header(path)
            status.pages = num_pages
            status.bad_pages = verify_snapshot(path)
        except SnapshotError as exc:
            status.ok = False
            status.detail = str(exc)
            return status
        if status.bad_pages:
            status.ok = False
            if status.detail == "ok":
                status.detail = f"{len(status.bad_pages)} corrupt pages"
        if REGISTRY.enabled:
            good = status.pages - len(status.bad_pages)
            if good:
                _SCRUBBED.inc(good, status="ok")
            if status.bad_pages:
                _SCRUBBED.inc(len(status.bad_pages), status="corrupt")
    return status


def _scrub_wal(path: Path) -> FileStatus:
    """Verify the write-ahead log next to a saved index.

    The WAL is intentionally outside the manifest (it outlives any one
    generation), so it gets its own classification: a torn tail is the
    expected signature of a crash mid-append — the batch was never
    acknowledged, recovery discards it, the directory is still CLEAN.
    A checksum mismatch over complete records is real corruption.
    """
    from .wal import scan_wal

    status = FileStatus(role="wal", name=path.name, ok=True)
    try:
        scan = scan_wal(path)
    except OSError as exc:
        status.ok = False
        status.detail = str(exc)
        return status
    pending = (f"{len(scan.batches)} pending batch"
               f"{'es' if len(scan.batches) != 1 else ''}")
    if scan.error is None:
        status.detail = pending
    elif scan.torn_tail:
        status.detail = f"{pending}; {scan.error} (recovery discards it)"
    else:
        status.ok = False
        status.detail = f"{pending}; {scan.error}"
    if REGISTRY.enabled:
        _SCRUBBED.inc(len(scan.batches), status="ok")
        if scan.error is not None and not scan.torn_tail:
            _SCRUBBED.inc(1, status="corrupt")
    return status


def scrub_index(directory: str | Path) -> ScrubReport:
    """Verify every file and page of a saved index directory.

    Raises ``FileNotFoundError`` when the directory holds no manifest;
    damaged files/pages are *reported* in the returned
    :class:`ScrubReport`, not raised.  A ``wal.log`` next to the
    manifest is scanned too (see :func:`_scrub_wal`).
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    report = ScrubReport(directory=str(directory),
                         generation=int(manifest.get("generation", 0)))
    for role, entry in sorted(manifest.get("files", {}).items()):
        report.files.append(_scrub_file(directory, role, entry))
    wal_path = directory / "wal.log"
    if wal_path.exists():
        report.files.append(_scrub_wal(wal_path))
    return report


def repair_index(directory: str | Path) -> tuple[ScrubReport, list[str]]:
    """Repair what can honestly be repaired; returns (report, actions).

    Manifest entries whose file's pages all verify but whose recorded
    size/hash disagree are recomputed and the manifest rewritten
    atomically.  Pages with checksum damage carry no redundancy and are
    left alone — the returned report still lists them, and the caller
    should restore from a good snapshot or rebuild.
    """
    directory = Path(directory)
    report = scrub_index(directory)
    actions: list[str] = []
    manifest = _read_manifest(directory)
    changed = False
    for status in report.files:
        if status.ok or status.bad_pages:
            continue
        if status.role not in manifest.get("files", {}):
            continue    # e.g. a corrupt WAL: no redundancy, report only
        path = directory / status.name
        if not path.exists():
            continue
        entry = manifest["files"][status.role]
        entry["sha256"] = file_sha256(path)
        entry["bytes"] = path.stat().st_size
        actions.append(f"recomputed manifest entry for {status.name}")
        changed = True
    if changed:
        tmp = directory / "meta.json.tmp"
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, directory / "meta.json")
        fsync_dir(directory)
        report = scrub_index(directory)
    return report, actions

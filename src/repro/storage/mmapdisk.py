"""Zero-copy mmap-backed page storage.

:class:`MmapDiskManager` is a drop-in :class:`~repro.storage.disk
.DiskManager` backend that keeps every frame (16-byte header + payload)
contiguous in one anonymous memory map and hands out **read-only
``memoryview`` slices** of the payload instead of copying page bytes on
every read.  ``np.frombuffer`` accepts those views directly, so record
decoding and R*-tree node deserialization run zero-copy end to end.

Checksums are verified **lazily and in batches**: a page is verified the
first time it is read after being written (or damaged), and the
verification pass covers the whole contiguous run of not-yet-verified
pages around the request in one sweep — vectorized header parsing over a
strided NumPy view plus one CRC traversal of the burst's payload region.
That matches the access pattern the paper's clustered subfields produce
(long sequential bursts) and amortizes the per-read verification cost
the eager list backend pays, without weakening the fault model:

* a page's *verified* flag is set **only** by an actual checksum pass
  over the stored bytes, and every mutation path (``write``, torn
  writes, ``store_frame``, injected bit flips) clears it;
* a batch pass marks the good pages of the burst verified, leaves the
  bad ones unverified, and raises :class:`~repro.storage.faults
  .CorruptPageError` only when the *requested* page is bad — so error
  attribution stays per-read and a damaged page can never be silently
  accepted, no matter which reads surround it.

The backend composes with the whole existing stack: the
:class:`~repro.storage.faults.FaultInjector` hooks, the buffer pool,
snapshots/scrub (``frame_bytes``/``store_frame``), and — through
:class:`RetryingMmapDiskManager` — the transient-fault retry policy.

Growth notes: ``mmap.resize`` raises ``BufferError`` while zero-copy
views are exported, so the map grows by allocating a larger anonymous
map and copying; superseded maps are simply dropped — views handed out
earlier keep their (stale but immutable-to-the-reader) snapshot alive
until they are garbage collected, mirroring the immutable ``bytes``
semantics of the list backend.
"""

from __future__ import annotations

import mmap

import numpy as np

from .disk import (_FRAME, _FRAME_MAGIC, CHECKSUM_ALGO, DiskManager,
                   FRAME_VERSION, PAGE_HEADER_SIZE, page_checksum,
                   parse_frame)
from .faults import CorruptPageError
from .retry import RetryingReadMixin

#: NumPy mirror of the frame header struct ``<4sBBHI4x`` — used to parse
#: a whole burst of headers in one strided, zero-copy view.
_HEADER_DTYPE = np.dtype([("magic", "S4"), ("version", "u1"),
                          ("algo", "u1"), ("length", "<u2"),
                          ("crc", "<u4"), ("pad", "V4")])

assert _HEADER_DTYPE.itemsize == PAGE_HEADER_SIZE


class MmapDiskManager(DiskManager):
    """Mmap-backed page file with zero-copy reads and lazy verification.

    Accepts the same constructor arguments as
    :class:`~repro.storage.disk.DiskManager`; only the storage primitives
    differ.  :meth:`read` returns a read-only ``memoryview`` of the
    payload (the list backend returns ``bytes``); both satisfy the
    buffer protocol every consumer uses.
    """

    #: Upper bound on pages checked by one batched verification sweep.
    VERIFY_BURST = 128

    #: Minimum capacity (in pages) of the first mapping.
    _MIN_GROW_PAGES = 256

    def _init_storage(self) -> None:
        self._count = 0
        self._capacity = 0
        self._map: mmap.mmap | None = None
        self._view: memoryview | None = None
        self._ro: memoryview | None = None
        self._verified = bytearray()
        self._zero_frame = _FRAME.pack(
            _FRAME_MAGIC, FRAME_VERSION, CHECKSUM_ALGO, 0,
            self._zero_crc) + self._zero_payload

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return self._count

    # -- storage primitives --------------------------------------------------

    def _append_pages(self, count: int) -> None:
        if not count:
            return
        new_count = self._count + count
        if new_count > self._capacity:
            self._grow(new_count)
        start = self._count * self.page_size
        self._view[start:start + count * self.page_size] = \
            self._zero_frame * count
        # Fresh pages still verify on first read: flags are only ever
        # set by an actual checksum pass.
        self._verified.extend(b"\x00" * count)
        self._count = new_count

    def _grow(self, needed_pages: int) -> None:
        new_cap = max(needed_pages, self._capacity * 2,
                      self._MIN_GROW_PAGES)
        new_map = mmap.mmap(-1, new_cap * self.page_size)
        if self._count:
            used = self._count * self.page_size
            new_map[:used] = self._map[:used]
        # The superseded map is dropped, not closed: exported zero-copy
        # views may still reference it (see module docstring).
        self._map = new_map
        self._view = memoryview(new_map)
        self._ro = self._view.toreadonly()
        self._capacity = new_cap

    def _store_payload(self, page_id: int, data: bytes, crc: int,
                       length: int) -> None:
        off = page_id * self.page_size
        self._view[off:off + PAGE_HEADER_SIZE] = _FRAME.pack(
            _FRAME_MAGIC, FRAME_VERSION, CHECKSUM_ALGO, length, crc)
        self._view[off + PAGE_HEADER_SIZE:off + self.page_size] = data
        # Never trust the write path's own checksum: a fault injector
        # may have torn the payload after the CRC was computed.
        self._verified[page_id] = 0

    def _payload_view(self, page_id: int) -> memoryview:
        off = page_id * self.page_size + PAGE_HEADER_SIZE
        return self._ro[off:off + self.usable_page_size]

    def page_payload(self, page_id: int) -> memoryview:
        """Stored payload of one page (read-only view), unaccounted."""
        self._check(page_id)
        return self._payload_view(page_id)

    # -- lazy batched verification -------------------------------------------

    def _verified_payload(self, page_id: int) -> memoryview:
        if not self._verified[page_id]:
            self._verify_burst(page_id)
        return self._payload_view(page_id)

    def _verify_burst(self, page_id: int) -> None:
        """Verify the contiguous unverified run starting at ``page_id``.

        Good pages of the run are marked verified; bad ones stay
        unverified (their own reads will raise).  Raises
        :class:`CorruptPageError` only when ``page_id`` itself is bad.
        """
        last = min(self._count - 1, page_id + self.VERIFY_BURST - 1)
        end = page_id
        while end < last and not self._verified[end + 1]:
            end += 1
        n = end - page_id + 1
        ps = self.page_size
        headers = np.ndarray((n,), dtype=_HEADER_DTYPE, buffer=self._ro,
                             offset=page_id * ps, strides=(ps,))
        header_ok = ((headers["magic"] == _FRAME_MAGIC)
                     & (headers["version"] == FRAME_VERSION)
                     & (headers["algo"] == CHECKSUM_ALGO))
        stored_crc = headers["crc"].astype(np.int64)
        ok = header_ok.copy()
        view = self._ro
        ups = self.usable_page_size
        base = page_id * ps + PAGE_HEADER_SIZE
        for k in range(n):
            if ok[k] and page_checksum(
                    view[base + k * ps:base + k * ps + ups]) \
                    != stored_crc[k]:
                ok[k] = False
        for k in range(n):
            if ok[k]:
                self._verified[page_id + k] = 1
        if not ok[0]:
            if not header_ok[0]:
                self._checksum_failed(page_id, "bad frame header")
            self._checksum_failed(page_id)

    # -- framing (snapshots, scrub) ------------------------------------------

    def frame_bytes(self, page_id: int) -> bytes:
        """Full on-disk frame of one page (header + payload)."""
        self._check(page_id)
        off = page_id * self.page_size
        return bytes(self._ro[off:off + self.page_size])

    def store_frame(self, page_id: int, frame: bytes,
                    verify: bool = True) -> None:
        """Install a serialized frame (snapshot load path)."""
        self._check(page_id)
        _length, crc, payload = parse_frame(self.name, page_id, frame,
                                            self.page_size)
        if verify and page_checksum(payload) != crc:
            raise CorruptPageError(self.name, page_id)
        off = page_id * self.page_size
        self._view[off:off + self.page_size] = frame
        # ``verify=True`` was an actual checksum pass over these bytes.
        self._verified[page_id] = 1 if verify else 0

    def verify_page(self, page_id: int) -> bool:
        """Unaccounted checksum check of one page (scrub path)."""
        self._check(page_id)
        off = page_id * self.page_size
        magic, version, algo, _length, crc = _FRAME.unpack_from(
            self._ro, off)
        ok = (magic == _FRAME_MAGIC and version == FRAME_VERSION
              and algo == CHECKSUM_ALGO
              and page_checksum(self._payload_view(page_id)) == crc)
        self._verified[page_id] = 1 if ok else 0
        return ok

    # -- fault-injection internals -------------------------------------------

    def _flip_bit(self, page_id: int, byte_index: int, bit: int) -> None:
        """Flip one stored payload bit in place (bit-rot injection)."""
        off = page_id * self.page_size + PAGE_HEADER_SIZE + byte_index
        self._view[off] = self._view[off] ^ (1 << bit)
        self._verified[page_id] = 0


class RetryingMmapDiskManager(RetryingReadMixin, MmapDiskManager):
    """An :class:`MmapDiskManager` whose reads survive transient faults."""

"""Simulated paged storage: disk manager, buffer pool, record files."""

from .buffer import BufferPool, PoolCounters
from .disk import DiskManager, PAGE_SIZE, PageError
from .records import RecordStore
from .snapshot import SnapshotError, load_disk, save_disk
from .stats import CostModelParams, IOStats

__all__ = [
    "BufferPool",
    "CostModelParams",
    "DiskManager",
    "IOStats",
    "PAGE_SIZE",
    "PageError",
    "PoolCounters",
    "RecordStore",
    "SnapshotError",
    "load_disk",
    "save_disk",
]

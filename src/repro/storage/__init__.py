"""Simulated paged storage: checksummed disk, buffer pool, record files,
fault injection, retries, snapshots, and offline scrub."""

from .buffer import BufferPool, PoolCounters, TenantCounters
from .disk import (CHECKSUM_NAME, DiskManager, PAGE_HEADER_SIZE, PAGE_SIZE,
                   page_checksum)
from .faults import (CorruptPageError, FaultEvent, FaultInjector, FaultSpec,
                     PageError, PageFault, SimulatedCrash, TransientIOError)
from .mmapdisk import MmapDiskManager, RetryingMmapDiskManager
from .records import RecordStore
from .remote import (REMOTE_GET_MS, REMOTE_PUT_MS, RemoteDiskManager,
                     RemoteFetchError, RetryingRemoteDiskManager,
                     SimulatedObjectStore, remote_backend)
from .retry import RetryingDiskManager, RetryingReadMixin, RetryPolicy
from .scrub import ScrubReport, file_sha256, repair_index, scrub_index
from .snapshot import (SAVE_DISK_CRASH_POINTS, SnapshotError, load_disk,
                       save_disk, verify_snapshot)
from .stats import CostModelParams, IOStats
from .wal import (WAL_CRASH_POINTS, WalBatch, WalError, WalScan,
                  WriteAheadLog, scan_wal)

__all__ = [
    "BufferPool",
    "CHECKSUM_NAME",
    "CorruptPageError",
    "CostModelParams",
    "DiskManager",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "IOStats",
    "MmapDiskManager",
    "PAGE_HEADER_SIZE",
    "PAGE_SIZE",
    "PageError",
    "PageFault",
    "PoolCounters",
    "REMOTE_GET_MS",
    "REMOTE_PUT_MS",
    "RecordStore",
    "RemoteDiskManager",
    "RemoteFetchError",
    "RetryPolicy",
    "RetryingDiskManager",
    "RetryingMmapDiskManager",
    "RetryingReadMixin",
    "RetryingRemoteDiskManager",
    "SimulatedObjectStore",
    "SAVE_DISK_CRASH_POINTS",
    "ScrubReport",
    "SimulatedCrash",
    "SnapshotError",
    "TenantCounters",
    "TransientIOError",
    "WAL_CRASH_POINTS",
    "WalBatch",
    "WalError",
    "WalScan",
    "WriteAheadLog",
    "file_sha256",
    "load_disk",
    "page_checksum",
    "remote_backend",
    "repair_index",
    "save_disk",
    "scan_wal",
    "scrub_index",
    "verify_snapshot",
]

"""Binary snapshots of simulated disks.

A :class:`~repro.storage.disk.DiskManager` can be flushed to a real file
and reloaded later, giving indexes a persistence path: build once, save,
reload in another process and query without rebuilding.

File layout: a fixed header (magic, version, page size, page count)
followed by the raw page images.
"""

from __future__ import annotations

import struct
from pathlib import Path

from .disk import DiskManager
from .stats import IOStats

_MAGIC = b"RPRODISK"
_VERSION = 1
_HEADER = struct.Struct("<8sIIQ")   # magic, version, page_size, num_pages


class SnapshotError(Exception):
    """Raised for malformed or incompatible snapshot files."""


def save_disk(disk: DiskManager, path: str | Path) -> int:
    """Write every page of ``disk`` to ``path``; returns bytes written."""
    path = Path(path)
    header = _HEADER.pack(_MAGIC, _VERSION, disk.page_size,
                          disk.num_pages)
    with open(path, "wb") as fh:
        fh.write(header)
        for page_id in range(disk.num_pages):
            fh.write(disk._pages[page_id])
    return _HEADER.size + disk.num_pages * disk.page_size


def load_disk(path: str | Path, stats: IOStats | None = None,
              name: str = "disk") -> DiskManager:
    """Reconstruct a :class:`DiskManager` from a snapshot file."""
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SnapshotError(f"{path}: truncated header")
        magic, version, page_size, num_pages = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise SnapshotError(f"{path}: not a disk snapshot")
        if version != _VERSION:
            raise SnapshotError(
                f"{path}: unsupported snapshot version {version}")
        disk = DiskManager(stats=stats, name=name, page_size=page_size)
        for page_id in range(num_pages):
            data = fh.read(page_size)
            if len(data) != page_size:
                raise SnapshotError(
                    f"{path}: truncated at page {page_id}")
            disk.allocate()
            disk._pages[page_id] = data
    # Loading is not accounted I/O against the simulated disk.
    disk.stats.reset()
    return disk

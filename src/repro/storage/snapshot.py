"""Crash-safe binary snapshots of simulated disks.

A :class:`~repro.storage.disk.DiskManager` can be flushed to a real file
and reloaded later, giving indexes a persistence path: build once, save,
reload in another process and query without rebuilding.

File layout (format 2): a fixed header (magic, version, page size, page
count) followed by the raw page *frames* — each page's 16-byte checksum
header plus payload, exactly :data:`~repro.storage.disk.PAGE_HEADER_SIZE`
+ payload bytes = ``page_size`` per page.  Loading re-validates every
frame, so bit rot on the real file surfaces as a typed error instead of
a corrupted index.

Writes are crash-safe: the snapshot is written to a temporary sibling,
fsynced, and atomically renamed over the destination, so a crash at any
point leaves either the complete old file or the complete new file —
never a torn mixture.  Crash-recovery tests exercise exactly that via
the ``crash_point`` parameter, which raises
:class:`~repro.storage.faults.SimulatedCrash` at a named step.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from .disk import DiskManager, PAGE_HEADER_SIZE, page_checksum, parse_frame
from .faults import CorruptPageError, SimulatedCrash
from .stats import IOStats

_MAGIC = b"RPRODISK"
_VERSION = 2
_HEADER = struct.Struct("<8sIIQ")   # magic, version, page_size, num_pages

#: Crash points honoured by :func:`save_disk`, in execution order.
SAVE_DISK_CRASH_POINTS = ("temp-written", "pre-rename", "post-rename")


class SnapshotError(Exception):
    """Raised for malformed or incompatible snapshot files."""


def _maybe_crash(point: str, crash_point: str | None) -> None:
    if crash_point == point:
        raise SimulatedCrash(point)


def fsync_dir(directory: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_disk(disk: DiskManager, path: str | Path,
              crash_point: str | None = None) -> int:
    """Atomically write every page frame of ``disk`` to ``path``.

    The snapshot lands via write-to-temp + fsync + rename; returns the
    bytes written.  ``crash_point`` (tests only) aborts with
    :class:`~repro.storage.faults.SimulatedCrash` at the named step —
    one of :data:`SAVE_DISK_CRASH_POINTS`.
    """
    path = Path(path)
    if crash_point is not None and crash_point not in SAVE_DISK_CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {crash_point!r}; expected one of "
            f"{SAVE_DISK_CRASH_POINTS}")
    header = _HEADER.pack(_MAGIC, _VERSION, disk.page_size,
                          disk.num_pages)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        for page_id in range(disk.num_pages):
            fh.write(disk.frame_bytes(page_id))
        fh.flush()
        _maybe_crash("temp-written", crash_point)
        os.fsync(fh.fileno())
    _maybe_crash("pre-rename", crash_point)
    os.replace(tmp, path)
    _maybe_crash("post-rename", crash_point)
    fsync_dir(path.parent)
    return _HEADER.size + disk.num_pages * disk.page_size


def read_snapshot_header(path: str | Path) -> tuple[int, int]:
    """Validate a snapshot header; returns ``(page_size, num_pages)``."""
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise SnapshotError(f"{path}: truncated header")
    magic, version, page_size, num_pages = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise SnapshotError(f"{path}: not a disk snapshot")
    if version != _VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version} (format "
            f"{_VERSION} adds per-page checksums; rebuild and re-save)")
    return page_size, num_pages


def load_disk(path: str | Path, stats: IOStats | None = None,
              name: str = "disk", verify: bool = True) -> DiskManager:
    """Reconstruct a :class:`DiskManager` from a snapshot file.

    Every page frame's header is validated; with ``verify=True``
    (default) the payload checksums are recomputed too, so on-disk
    corruption raises :class:`SnapshotError` naming the bad page
    instead of producing a silently wrong index.
    """
    path = Path(path)
    page_size, num_pages = read_snapshot_header(path)
    expected = _HEADER.size + num_pages * page_size
    actual = path.stat().st_size
    if actual != expected:
        raise SnapshotError(
            f"{path}: {actual} bytes on disk, header promises {expected}")
    disk = DiskManager(stats=stats, name=name, page_size=page_size)
    with open(path, "rb") as fh:
        fh.seek(_HEADER.size)
        for page_id in range(num_pages):
            frame = fh.read(page_size)
            if len(frame) != page_size:
                raise SnapshotError(
                    f"{path}: truncated at page {page_id}")
            disk.allocate()
            try:
                disk.store_frame(page_id, frame, verify=verify)
            except CorruptPageError as exc:
                raise SnapshotError(f"{path}: {exc}") from exc
    # Loading is not accounted I/O against the simulated disk.
    disk.stats.reset()
    return disk


def verify_snapshot(path: str | Path) -> list[tuple[int, str]]:
    """Checksum every page of a snapshot; returns ``(page_id, detail)``
    pairs for the pages that fail (empty list = clean).

    Unlike :func:`load_disk` this never raises on page damage — it
    keeps going and reports every bad page, which is what a scrub
    wants.  Header-level damage still raises :class:`SnapshotError`.
    """
    path = Path(path)
    page_size, num_pages = read_snapshot_header(path)
    bad: list[tuple[int, str]] = []
    with open(path, "rb") as fh:
        fh.seek(_HEADER.size)
        for page_id in range(num_pages):
            frame = fh.read(page_size)
            if len(frame) != page_size:
                bad.append((page_id, "truncated frame"))
                break
            try:
                _length, crc, payload = parse_frame(
                    path.name, page_id, frame, page_size)
            except CorruptPageError as exc:
                bad.append((page_id, str(exc)))
                continue
            if page_checksum(payload) != crc:
                bad.append((page_id, "checksum mismatch"))
    return bad

"""Shared frame-payload → structured-record codec.

Both disk backends hand back page payloads as buffer-protocol objects —
``bytes`` from the list-backed :class:`~repro.storage.disk.DiskManager`,
read-only ``memoryview`` slices from
:class:`~repro.storage.mmapdisk.MmapDiskManager` — and every reader used
to carry its own ``np.frombuffer`` call, which had already started to
drift between the list and mmap paths.  This module is now the single
entry point: :func:`decode_records` decodes one payload,
:func:`decode_pages` decodes a contiguous run of payloads into one
structured array for the vectorized query path.

Decoding is zero-copy where the buffer allows it: ``np.frombuffer``
wraps the payload without copying (the resulting array is read-only for
read-only buffers, which is exactly what query code wants).  Multi-page
runs are materialized into one freshly allocated array — a single copy,
instead of one Python-level loop iteration per record.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def decode_records(payload, dtype: np.dtype, count: int = -1,
                   offset: int = 0) -> np.ndarray:
    """Decode one page payload into a structured array of ``count`` records.

    ``payload`` is any buffer-protocol object (``bytes``, ``memoryview``,
    ``bytearray``); ``count=-1`` decodes every whole record the buffer
    holds past ``offset``.  The returned array aliases the payload
    buffer — zero-copy — and is read-only when the buffer is.
    """
    if count == -1:
        count = (len(payload) - offset) // np.dtype(dtype).itemsize
    return np.frombuffer(payload, dtype=dtype, count=count, offset=offset)


def decode_pages(payloads: Sequence, dtype: np.dtype,
                 counts: Sequence[int]) -> np.ndarray:
    """Decode a run of page payloads into one contiguous structured array.

    ``payloads[i]`` holds ``counts[i]`` leading records of ``dtype``.
    A single-page run stays zero-copy (it returns the
    :func:`decode_records` view directly); longer runs allocate one
    output array and copy each page's records into place — no
    per-record Python loop, no intermediate list of arrays.
    """
    if len(payloads) != len(counts):
        raise ValueError(
            f"{len(payloads)} payloads but {len(counts)} record counts")
    if not payloads:
        return np.empty(0, dtype=dtype)
    if len(payloads) == 1:
        return decode_records(payloads[0], dtype, counts[0])
    out = np.empty(sum(counts), dtype=dtype)
    pos = 0
    for payload, n in zip(payloads, counts):
        out[pos:pos + n] = decode_records(payload, dtype, n)
        pos += n
    return out

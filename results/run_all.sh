#!/bin/bash
set -x
cd /root/repo
python -m repro.bench fig10 > results/fig10.txt 2>&1
python -m repro.bench fig7 > results/fig7.txt 2>&1
python -m repro.bench fig8b > results/fig8b_cold.txt 2>&1
python -m repro.bench fig8b --warm > results/fig8b_warm.txt 2>&1
python -m repro.bench fig12 > results/fig12_cold.txt 2>&1
python -m repro.bench fig12 --warm > results/fig12_warm.txt 2>&1
python -m repro.bench fig8a > results/fig8a_cold.txt 2>&1
python -m repro.bench fig8a --warm > results/fig8a_warm.txt 2>&1
python -m repro.bench ablation-cost --full > results/ablation_cost.txt 2>&1
python -m repro.bench ablation-curve --full > results/ablation_curve.txt 2>&1
python -m repro.bench ablation-pagesize > results/ablation_pagesize.txt 2>&1
python -m repro.bench methods-extra > results/methods_extra.txt 2>&1
python -m repro.bench scale > results/scale.txt 2>&1
python -m repro.bench fig11 > results/fig11_cold.txt 2>&1
python -m repro.bench fig11 --warm > results/fig11_warm.txt 2>&1
python -m repro.bench batch > results/batch.txt 2>&1
echo DONE > results/FINAL_DONE

#!/bin/bash
set -x
cd /root/repo
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}$PWD/src"
python -m repro.bench fig10 > results/fig10.txt 2>&1
python -m repro.bench fig7 > results/fig7.txt 2>&1
python -m repro.bench fig8b > results/fig8b_cold.txt 2>&1
python -m repro.bench fig8b --warm > results/fig8b_warm.txt 2>&1
python -m repro.bench fig12 > results/fig12_cold.txt 2>&1
python -m repro.bench fig12 --warm > results/fig12_warm.txt 2>&1
python -m repro.bench fig8a > results/fig8a_cold.txt 2>&1
python -m repro.bench fig8a --warm > results/fig8a_warm.txt 2>&1
python -m repro.bench ablation-cost --full > results/ablation_cost.txt 2>&1
python -m repro.bench ablation-curve --full > results/ablation_curve.txt 2>&1
python -m repro.bench ablation-pagesize > results/ablation_pagesize.txt 2>&1
python -m repro.bench methods-extra > results/methods_extra.txt 2>&1
python -m repro.bench scale > results/scale.txt 2>&1
python -m repro.bench fig11 > results/fig11_cold.txt 2>&1
python -m repro.bench fig11 --warm > results/fig11_warm.txt 2>&1
python -m repro.bench batch > results/batch.txt 2>&1
# Parallel engine throughput sweep; also writes BENCH_throughput.json
# at the repo root.
python -m repro.bench throughput > results/throughput.txt 2>&1
# Live-update degradation/compaction/WAL-recovery experiment; also
# writes BENCH_update.json at the repo root.
python -m repro.bench update > results/update.txt 2>&1
# Multi-tenant query-service load run; also writes BENCH_serve.json
# at the repo root.
python -m repro.bench serve > results/serve.txt 2>&1
# Observability artifacts: EXPLAIN ANALYZE report + query/batch span traces
# over a small demo index (Perfetto-loadable Chrome trace JSON).
python -c "
import numpy as np
from repro.synth.terrain import roseburg_like_heights
np.save('results/demo_terrain.npy', roseburg_like_heights(128))
"
python -m repro build results/demo_terrain.npy results/demo_index > /dev/null 2>&1
python -m repro explain results/demo_index 300 320 --analyze > results/explain.txt 2>&1
python -m repro query results/demo_index 300 320 \
    --trace results/query_trace.json > /dev/null 2>&1
printf '150 250\n200 320\n450 500\n300 310\n' > results/demo_queries.txt
python -m repro batch results/demo_index results/demo_queries.txt --quiet \
    --trace results/batch_trace.json \
    --metrics-out results/metrics.json > /dev/null 2>&1
# Durability check (runs last: it deliberately corrupts the demo index).
# Scrub the freshly built index (manifest checksums + every page frame),
# then show that a flipped bit in one data page is detected and
# attributed to its page id.
python -m repro scrub results/demo_index > results/scrub.txt 2>&1
python - >> results/scrub.txt 2>&1 <<'PYEOF'
import glob
path = glob.glob('results/demo_index/data-*.pages')[0]
raw = bytearray(open(path, 'rb').read())
raw[24 + 3 * 4096 + 16 + 1] ^= 0x40   # payload byte of data page 3
open(path, 'wb').write(raw)
print()
print('--- after flipping one bit in data page 3 ---')
PYEOF
python -m repro scrub results/demo_index >> results/scrub.txt 2>&1
rm -rf results/demo_index results/demo_terrain.npy results/demo_queries.txt
echo DONE > results/FINAL_DONE
